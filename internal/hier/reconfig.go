package hier

import (
	"errors"
	"fmt"
	"math"

	"hpfq/internal/pifo"
	"hpfq/internal/sched"
)

// This file is the live-mutation surface of the H-PFQ tree: share retunes,
// leaf grafts and removals, and per-node policy swaps on a running server.
// The dataplane calls these between pump iterations while holding its own
// lock, so nothing here synchronizes; the contract is that every method
// either applies fully or reports an error without touching scheduler state
// (capability pre-checks walk the affected subtree before the first write).
//
// Shares, not rates, are the mutable quantity — exactly the link-sharing
// model of the paper (§2): a node's guaranteed rate is always
// r_parent · φ/Σφ over its live siblings, so adding a class dilutes its
// siblings proportionally and removing one lets them inherit the freed
// bandwidth, with no reservation bookkeeping to corrupt.

// ErrLeafBusy reports a RemoveLeaf on a leaf that still holds packets —
// either queued in its FIFO or committed on the active path. The caller owns
// the drain story: stop feeding the session and retry once it quiesces.
var ErrLeafBusy = errors.New("hier: leaf still holds packets")

// retunable and removable are the capability probes pifo hosts implement
// (see pifo.Sched.Retunable); bespoke node schedulers without them are
// treated as immutable.
type retunable interface{ Retunable() bool }
type removable interface{ Removable() bool }

// NodeInfo describes one live node of the tree: the control plane's display
// record and the dataplane's template for its HTB mirror.
type NodeInfo struct {
	Name    string
	Parent  string  // parent node name; "" for the root
	Rate    float64 // guaranteed rate r_n in bits/sec
	Share   float64 // service share φ relative to siblings
	Session int     // leaf session id; -1 for interior nodes
	Policy  string  // interior node's scheduler name; "" for leaves
}

// Nodes returns every live node in depth-first preorder, root first.
func (tr *Tree) Nodes() []NodeInfo {
	var out []NodeInfo
	var walk func(n *node)
	walk = func(n *node) {
		info := NodeInfo{
			Name:    n.name,
			Rate:    n.rate,
			Share:   n.share,
			Session: n.session,
		}
		if n.parent != nil {
			info.Parent = n.parent.name
		}
		if !n.isLeaf() {
			info.Policy = n.ns.Name()
		}
		out = append(out, info)
		for _, c := range n.children {
			if !c.removed {
				walk(c)
			}
		}
	}
	walk(tr.root)
	return out
}

// retuneCheck verifies that every interior scheduler in the subtree rooted
// at n supports live rate changes, so a cascade that follows cannot fail
// halfway down.
func (tr *Tree) retuneCheck(n *node) error {
	if n.isLeaf() || n.removed {
		return nil
	}
	if _, ok := n.ns.(sched.NodeReconfigurer); !ok {
		return fmt.Errorf("hier: node %q scheduler %q does not support live reconfiguration", n.name, n.ns.Name())
	}
	if rt, ok := n.ns.(retunable); !ok || !rt.Retunable() {
		return fmt.Errorf("hier: node %q policy %q does not support live retuning", n.name, n.ns.Name())
	}
	for _, c := range n.children {
		if err := tr.retuneCheck(c); err != nil {
			return err
		}
	}
	return nil
}

// applyShares recomputes the guaranteed rates of parent's live children from
// their shares (r_c = r_parent · φ_c/Σφ) and cascades the new rates down the
// subtree. Callers must have passed retuneCheck(parent) first.
func (tr *Tree) applyShares(parent *node) error {
	var sum float64
	for _, c := range parent.children {
		if !c.removed {
			sum += c.share
		}
	}
	if sum <= 0 {
		return fmt.Errorf("hier: node %q has no live children", parent.name)
	}
	r := parent.ns.(sched.NodeReconfigurer)
	for _, c := range parent.children {
		if c.removed {
			continue
		}
		rate := parent.rate * c.share / sum
		if err := r.SetChildRate(c.childIdx, rate); err != nil {
			return err
		}
		if err := tr.setRate(c, rate); err != nil {
			return err
		}
	}
	return nil
}

func (tr *Tree) setRate(n *node, rate float64) error {
	n.rate = rate
	if n.isLeaf() {
		tr.RetuneSession(n.session, rate)
		return nil
	}
	if err := n.ns.(sched.NodeReconfigurer).SetNodeRate(rate); err != nil {
		return err
	}
	return tr.applyShares(n)
}

func validShare(share float64) bool {
	return share > 0 && !math.IsNaN(share) && !math.IsInf(share, 0)
}

// SetNodeShare retunes the named node's service share φ relative to its
// siblings on the live tree; sibling subtrees rescale proportionally. The
// root carries no share (it always owns the full link rate).
func (tr *Tree) SetNodeShare(name string, share float64) error {
	n, ok := tr.byName[name]
	if !ok || n.removed {
		return fmt.Errorf("hier: no node %q", name)
	}
	if !validShare(share) {
		return fmt.Errorf("hier: invalid share %g for node %q", share, name)
	}
	if n.parent == nil {
		return fmt.Errorf("hier: root %q carries no share", name)
	}
	if err := tr.retuneCheck(n.parent); err != nil {
		return err
	}
	old := n.share
	n.share = share
	if err := tr.applyShares(n.parent); err != nil {
		n.share = old
		return err
	}
	return nil
}

// SetSessionRate retunes a session leaf to a target absolute guaranteed rate
// in bits/sec by solving for the share that yields it against the current
// siblings: φ' = r'·Σφ_others/(r_parent − r'). The target must stay strictly
// below the parent's rate, and the leaf must have live siblings to trade
// share against.
func (tr *Tree) SetSessionRate(session int, rate float64) error {
	leaf, ok := tr.leaves[session]
	if !ok {
		return fmt.Errorf("hier: unknown session %d", session)
	}
	if !validShare(rate) {
		return fmt.Errorf("hier: invalid rate %g for session %d", rate, session)
	}
	parent := leaf.parent
	var others float64
	for _, c := range parent.children {
		if !c.removed && c != leaf {
			others += c.share
		}
	}
	if others == 0 {
		return fmt.Errorf("hier: session %d is the only child of %q; its rate is pinned to the parent's %g", session, parent.name, parent.rate)
	}
	if rate >= parent.rate {
		return fmt.Errorf("hier: session %d target rate %g must be below parent %q rate %g", session, rate, parent.name, parent.rate)
	}
	if err := tr.retuneCheck(parent); err != nil {
		return err
	}
	old := leaf.share
	leaf.share = rate * others / (parent.rate - rate)
	if err := tr.applyShares(parent); err != nil {
		leaf.share = old
		return err
	}
	return nil
}

// AddLeaf grafts a new session leaf with the given share under the named
// interior node on the live tree. Siblings dilute proportionally — the
// link-sharing semantics of the paper, so the graft always admits (there is
// no strict reservation to exceed). name may be empty for an anonymous leaf
// (addressable only by session id).
func (tr *Tree) AddLeaf(parentName, name string, session int, share float64) error {
	parent, ok := tr.byName[parentName]
	if !ok || parent.removed {
		return fmt.Errorf("hier: no node %q", parentName)
	}
	if parent.isLeaf() {
		return fmt.Errorf("hier: node %q is a leaf, not a link-sharing class", parentName)
	}
	if session < 0 {
		return fmt.Errorf("hier: invalid session id %d", session)
	}
	if _, dup := tr.leaves[session]; dup {
		return fmt.Errorf("hier: session %d already exists", session)
	}
	if name != "" {
		if _, dup := tr.byName[name]; dup {
			return fmt.Errorf("hier: node %q already exists", name)
		}
	}
	if !validShare(share) {
		return fmt.Errorf("hier: invalid share %g for leaf %q", share, name)
	}
	if err := tr.retuneCheck(parent); err != nil {
		return err
	}
	var sum float64
	for _, c := range parent.children {
		if !c.removed {
			sum += c.share
		}
	}
	idx := len(parent.children)
	leaf := &node{
		name:     name,
		parent:   parent,
		childIdx: idx,
		rate:     parent.rate * share / (sum + share),
		share:    share,
		session:  session,
	}
	parent.ns.AddChild(idx, leaf.rate)
	parent.children = append(parent.children, leaf)
	tr.leaves[session] = leaf
	if name != "" {
		tr.byName[name] = leaf
	}
	return tr.applyShares(parent)
}

// CanRemoveLeaf reports whether the session leaf could be removed once it
// quiesces: RemoveLeaf's static capability checks (the parent's subtree
// retunes, the parent's policy removes, the leaf is not the last child)
// without the quiescence test and without mutating anything. The dataplane
// calls it before committing a class to draining.
func (tr *Tree) CanRemoveLeaf(session int) error {
	leaf, ok := tr.leaves[session]
	if !ok {
		return fmt.Errorf("hier: unknown session %d", session)
	}
	parent := leaf.parent
	if err := tr.retuneCheck(parent); err != nil {
		return err
	}
	if rv, ok := parent.ns.(removable); !ok || !rv.Removable() {
		return fmt.Errorf("hier: node %q policy %q does not support live removal", parent.name, parent.ns.Name())
	}
	var others float64
	for _, c := range parent.children {
		if !c.removed && c != leaf {
			others += c.share
		}
	}
	if others == 0 {
		return fmt.Errorf("hier: cannot remove session %d, the last child of %q", session, parent.name)
	}
	return nil
}

// RemoveLeaf detaches a quiesced session leaf from the live tree; its
// siblings inherit the freed share proportionally. A leaf still holding
// packets (queued, committed, or on the wire until the next Dequeue resets
// the path) returns ErrLeafBusy — stop feeding the session and retry. The
// session id may later be re-added with AddLeaf.
func (tr *Tree) RemoveLeaf(session int) error {
	leaf, ok := tr.leaves[session]
	if !ok {
		return fmt.Errorf("hier: unknown session %d", session)
	}
	if !leaf.fifo.Empty() || leaf.hol != nil {
		return fmt.Errorf("%w: session %d", ErrLeafBusy, session)
	}
	parent := leaf.parent
	if err := tr.retuneCheck(parent); err != nil {
		return err
	}
	if rv, ok := parent.ns.(removable); !ok || !rv.Removable() {
		return fmt.Errorf("hier: node %q policy %q does not support live removal", parent.name, parent.ns.Name())
	}
	var others float64
	for _, c := range parent.children {
		if !c.removed && c != leaf {
			others += c.share
		}
	}
	if others == 0 {
		return fmt.Errorf("hier: cannot remove session %d, the last child of %q", session, parent.name)
	}
	if err := parent.ns.(sched.NodeReconfigurer).RemoveChild(leaf.childIdx); err != nil {
		return err
	}
	leaf.removed = true
	delete(tr.leaves, session)
	if leaf.name != "" {
		delete(tr.byName, leaf.name)
	}
	return tr.applyShares(parent)
}

// SetNodePolicy swaps the scheduling discipline of the named interior node
// on the live tree. Backlogged children stay backlogged, re-stamped against
// the fresh policy's virtual clock (see pifo.Node.SetPolicy).
func (tr *Tree) SetNodePolicy(name string, f pifo.Factory) error {
	n, ok := tr.byName[name]
	if !ok || n.removed {
		return fmt.Errorf("hier: no node %q", name)
	}
	if n.isLeaf() {
		return fmt.Errorf("hier: leaf %q carries no server", name)
	}
	r, ok := n.ns.(sched.NodeReconfigurer)
	if !ok {
		return fmt.Errorf("hier: node %q scheduler %q does not support live reconfiguration", name, n.ns.Name())
	}
	return r.SetPolicy(f)
}
