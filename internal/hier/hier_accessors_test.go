package hier

import (
	"math"
	"sort"
	"testing"

	"hpfq/internal/packet"
	"hpfq/internal/topo"
)

func TestTreeAccessors(t *testing.T) {
	top := deepTopology()
	tree, err := New(top, 1e6, "WF2Q+")
	if err != nil {
		t.Fatal(err)
	}
	if tree.Name() != "H-WF2Q+" {
		t.Errorf("Name = %q", tree.Name())
	}
	if tree.Rate() != 1e6 {
		t.Errorf("Rate = %g", tree.Rate())
	}
	// Session rates follow the topology: a = 0.6·0.5·0.7 = 0.21.
	if got := tree.SessionRate(0); math.Abs(got-0.21e6) > 1 {
		t.Errorf("SessionRate(0) = %g, want 210000", got)
	}
	if tree.SessionRate(99) != 0 {
		t.Error("unknown session should have rate 0")
	}
	if got := tree.NodeRate("LL"); math.Abs(got-0.30e6) > 1 {
		t.Errorf("NodeRate(LL) = %g, want 300000", got)
	}
	if tree.NodeRate("nope") != 0 {
		t.Error("unknown node should have rate 0")
	}
	sess := tree.Sessions()
	sort.Ints(sess)
	if len(sess) != 4 || sess[0] != 0 || sess[3] != 3 {
		t.Errorf("Sessions = %v", sess)
	}
	// Queue accounting.
	tree.Enqueue(0, packet.New(2, 100))
	tree.Enqueue(0, packet.New(2, 50))
	if tree.QueueLen(2) != 2 || tree.QueueBits(2) != 150 {
		t.Errorf("QueueLen/Bits = %d/%g", tree.QueueLen(2), tree.QueueBits(2))
	}
	if tree.QueueLen(42) != 0 || tree.QueueBits(42) != 0 {
		t.Error("unknown session queue should be empty")
	}
	if tree.Backlog() != 2 {
		t.Errorf("Backlog = %d", tree.Backlog())
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := New(topo.Leaf("x", 1, 0), 1, "WF2Q+"); err == nil {
		t.Error("leaf root should error")
	}
	if _, err := New(deepTopology(), 0, "WF2Q+"); err == nil {
		t.Error("zero rate should error")
	}
	if _, err := New(deepTopology(), 1, "nope"); err == nil {
		t.Error("unknown algorithm should error")
	}
	bad := topo.Interior("r", 1, topo.Leaf("a", -1, 0))
	if _, err := New(bad, 1, "WF2Q+"); err == nil {
		t.Error("invalid topology should error")
	}
}

func TestEnqueueUnknownSessionPanics(t *testing.T) {
	tree, err := New(deepTopology(), 1, "WF2Q+")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown session")
		}
	}()
	tree.Enqueue(0, packet.New(77, 1))
}

// TestMixedSizesHierarchy: heterogeneous packet sizes through a deep tree
// still respect shares (per-bit fairness, not per-packet).
func TestMixedSizesHierarchy(t *testing.T) {
	tree, err := New(deepTopology(), 1e6, "WF2Q+")
	if err != nil {
		t.Fatal(err)
	}
	sizes := []float64{1500 * 8, 576 * 8, 64 * 8, 9000 * 8}
	served := map[int]float64{}
	// Drive the scheduler directly with per-session cyclic sizes.
	k := 0
	refill := func(s int) {
		tree.Enqueue(0, packet.New(s, sizes[(s+k)%len(sizes)]))
		k++
	}
	for s := 0; s < 4; s++ {
		refill(s)
		refill(s)
	}
	var total float64
	for total < 4e6 {
		p := tree.Dequeue(0)
		served[p.Session] += p.Length
		total += p.Length
		refill(p.Session)
	}
	want := map[int]float64{0: 0.21, 1: 0.09, 2: 0.30, 3: 0.40}
	for s, w := range want {
		if got := served[s] / total; math.Abs(got-w) > 0.02 {
			t.Errorf("session %d share %.3f, want %.2f", s, got, w)
		}
	}
}
