// Package hier implements Hierarchical Packet Fair Queueing (H-PFQ): a tree
// of one-level PFQ server nodes used as building blocks, exactly the
// construction of the paper's §4. Interior nodes schedule the one-packet
// *logical queues* of their children; leaves hold the real per-session FIFO
// queues. The control flow mirrors the paper's pseudocode:
//
//   - Arrive: a packet reaching an empty leaf queue becomes the leaf's
//     logical head and propagates up through idle ancestors, each committing
//     its next packet (Restart-Node).
//   - Dequeue: the link takes the root's committed packet (Q_R).
//   - Reset-Path: when transmission completes, the logical queues along the
//     active path are cleared top-down, the leaf FIFO advances, and nodes
//     recommit bottom-up; busy flags survive the reset so continuations are
//     stamped S ← F (eq. 28 first case).
//
// The per-node discipline is pluggable (sched.NodeScheduler): H-WF²Q+ uses
// core.Node, the paper's H-WFQ comparison uses sched.WFQNode, and H-SCFQ /
// H-SFQ / H-DRR follow the same way. Each node's virtual clock advances in
// Reference Time units T_n = W_n(0,t)/r_n (§4.1), so no wall clock is
// threaded through the hierarchy.
package hier

import (
	"fmt"

	"hpfq/internal/errs"
	"hpfq/internal/obs"
	"hpfq/internal/packet"
	"hpfq/internal/pifo"
	"hpfq/internal/sched"
	"hpfq/internal/topo"
)

// Tree is an H-PFQ server. It satisfies the queue contract used by
// netsim.Link (Enqueue/Dequeue/Backlog), so a hierarchical server drops in
// anywhere a flat scheduler does.
//
// Tree embeds a real-time collector covering the whole hierarchy (per
// session: counts, delays, WFI against the leaf's guaranteed rate);
// EnableMetrics and SetTracer cascade to every interior node's
// reference-time collector, whose snapshots NodeSnapshots exposes.
type Tree struct {
	algo     string
	rate     float64
	root     *node
	leaves   map[int]*node
	byName   map[string]*node
	interior []*node
	backlog  int
	inflight bool // root's committed packet is on the wire
	obs.Collector
}

type node struct {
	name     string
	parent   *node
	childIdx int // this node's id within parent's scheduler
	children []*node
	rate     float64
	share    float64 // service share φ relative to siblings (topo.Node.Share)
	removed  bool    // detached by RemoveLeaf; slot kept so childIdx stays stable
	session  int     // leaf session id, -1 for interior

	ns   sched.NodeScheduler // interior nodes only
	fifo packet.FIFO         // leaves only
	hol  *packet.Packet      // logical queue Q_n: the committed packet
	busy bool                // paper's Busy_n flag
	act  *node               // paper's ActiveChild_n
}

func (n *node) isLeaf() bool { return n.session >= 0 }

// NewNodeFunc builds the per-node scheduler for an interior node with
// guaranteed rate r_n.
type NewNodeFunc func(rate float64) sched.NodeScheduler

// NewNodeSpecFunc builds the per-node scheduler for the interior node
// described by tn with guaranteed rate r_n. Seeing the topology node lets
// the builder honor per-node policy annotations (tn.Policy, node names).
type NewNodeSpecFunc func(tn *topo.Node, rate float64) (sched.NodeScheduler, error)

// Build constructs an H-PFQ server over the given topology for a link of
// the given rate, creating one scheduler per interior node via newNode.
// The topology root must be an interior node.
func Build(t *topo.Node, linkRate float64, algo string, newNode NewNodeFunc) (*Tree, error) {
	return BuildSpec(t, linkRate, algo, func(_ *topo.Node, rate float64) (sched.NodeScheduler, error) {
		return newNode(rate), nil
	})
}

// BuildSpec is Build with a topology-aware node constructor: newNode is
// called once per interior node with that node's topo spec and guaranteed
// rate, and may fail (e.g. an unknown per-node policy name), aborting the
// build.
func BuildSpec(t *topo.Node, linkRate float64, algo string, newNode NewNodeSpecFunc) (*Tree, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("hier: %w: %v", errs.ErrBadTopology, err)
	}
	if t.IsLeaf() {
		return nil, fmt.Errorf("hier: %w: topology root must be an interior node", errs.ErrBadTopology)
	}
	if linkRate <= 0 {
		return nil, fmt.Errorf("hier: invalid link rate %g", linkRate)
	}
	rates := t.Rates(linkRate)
	tr := &Tree{
		algo:   algo,
		rate:   linkRate,
		leaves: make(map[int]*node),
		byName: make(map[string]*node),
	}
	root, err := tr.build(t, nil, 0, rates, newNode)
	if err != nil {
		return nil, err
	}
	tr.root = root
	tr.InitObs("H-"+algo, linkRate)
	for id, leaf := range tr.leaves {
		tr.RegisterSession(id, leaf.rate)
	}
	return tr, nil
}

// New builds an H-PFQ server using the named one-level algorithm
// ("WF2Q+", "WFQ", "WF2Q", "SCFQ", "SFQ", "DRR", or any registered policy)
// at every node. Nodes whose topology spec names its own policy
// (topo.Node.Policy, e.g. from the ':policy' clause of topo.Parse) use that
// policy instead of algo.
func New(t *topo.Node, linkRate float64, algo string) (*Tree, error) {
	return BuildSpec(t, linkRate, algo, func(tn *topo.Node, rate float64) (sched.NodeScheduler, error) {
		name := algo
		if tn.Policy != "" {
			name = tn.Policy
		}
		return sched.NewNode(name, rate)
	})
}

// Resolver returns a node constructor implementing the public API's policy
// resolution order, most specific first: an explicit per-node factory keyed
// by topology node name (WithNodePolicy), the topology spec's own Policy
// annotation, the hierarchy-wide default factory (WithPolicy), and finally
// the named algorithm.
func Resolver(algo string, def *pifo.Factory, perNode map[string]pifo.Factory) NewNodeSpecFunc {
	return func(tn *topo.Node, rate float64) (sched.NodeScheduler, error) {
		if f, ok := perNode[tn.Name]; ok {
			return sched.NewPolicyNode(f, rate)
		}
		if tn.Policy != "" {
			return sched.NewNode(tn.Policy, rate)
		}
		if def != nil {
			return sched.NewPolicyNode(*def, rate)
		}
		return sched.NewNode(algo, rate)
	}
}

func (tr *Tree) build(t *topo.Node, parent *node, idx int, rates map[*topo.Node]float64, newNode NewNodeSpecFunc) (*node, error) {
	n := &node{
		name:     t.Name,
		parent:   parent,
		childIdx: idx,
		rate:     rates[t],
		share:    t.Share,
		session:  t.Session,
	}
	if t.IsLeaf() {
		tr.leaves[t.Session] = n
	} else {
		if n.name == "" {
			n.name = fmt.Sprintf("node#%d", len(tr.interior))
		}
		tr.interior = append(tr.interior, n)
		ns, err := newNode(t, n.rate)
		if err != nil {
			return nil, fmt.Errorf("hier: node %q: %w", n.name, err)
		}
		n.ns = ns
		for i, ct := range t.Children {
			c, err := tr.build(ct, n, i, rates, newNode)
			if err != nil {
				return nil, err
			}
			n.children = append(n.children, c)
			n.ns.AddChild(i, c.rate)
		}
	}
	if t.Name != "" {
		tr.byName[t.Name] = n
	}
	return n, nil
}

// EnableMetrics switches on metric accumulation for the tree and for every
// interior node scheduler.
func (tr *Tree) EnableMetrics() {
	tr.Collector.EnableMetrics()
	for _, n := range tr.interior {
		n.ns.EnableMetrics()
	}
}

// SetTracer installs the tracer on the tree and on every interior node,
// wrapping each node's stream so events carry the node's topology name
// rather than the bare algorithm name.
func (tr *Tree) SetTracer(t obs.Tracer) {
	tr.Collector.SetTracer(t)
	for _, n := range tr.interior {
		if t == nil {
			n.ns.SetTracer(nil)
		} else {
			n.ns.SetTracer(obs.Named(n.name, t))
		}
	}
}

// NodeSnapshots returns the reference-time metrics of every interior node
// scheduler, keyed by node name (topology names, or node#i for unnamed
// interior nodes). Interior counters are in the node's own clock: counts and
// depths of the one-packet logical queues, no delay or WFI statistics.
func (tr *Tree) NodeSnapshots() map[string]obs.Metrics {
	out := make(map[string]obs.Metrics, len(tr.interior))
	for _, n := range tr.interior {
		m := n.ns.Snapshot()
		m.Name = n.name + "/" + m.Name
		out[n.name] = m
	}
	return out
}

// Name identifies the hierarchy and its per-node algorithm.
func (tr *Tree) Name() string { return "H-" + tr.algo }

// Rate returns the link rate.
func (tr *Tree) Rate() float64 { return tr.rate }

// Backlog returns the number of queued packets (including a committed
// packet that is on the wire until the next Dequeue resets the path).
func (tr *Tree) Backlog() int { return tr.backlog }

// QueueLen returns the number of packets queued for a session.
func (tr *Tree) QueueLen(session int) int {
	leaf, ok := tr.leaves[session]
	if !ok {
		return 0
	}
	return leaf.fifo.Len()
}

// QueueBits returns the number of bits queued for a session.
func (tr *Tree) QueueBits(session int) float64 {
	leaf, ok := tr.leaves[session]
	if !ok {
		return 0
	}
	return leaf.fifo.Bits()
}

// SessionRate returns the guaranteed rate of a session leaf.
func (tr *Tree) SessionRate(session int) float64 {
	leaf, ok := tr.leaves[session]
	if !ok {
		return 0
	}
	return leaf.rate
}

// NodeRate returns the guaranteed rate of the named node, or 0.
func (tr *Tree) NodeRate(name string) float64 {
	n, ok := tr.byName[name]
	if !ok {
		return 0
	}
	return n.rate
}

// Sessions returns the ids of all session leaves.
func (tr *Tree) Sessions() []int {
	out := make([]int, 0, len(tr.leaves))
	for id := range tr.leaves {
		out = append(out, id)
	}
	return out
}

// Enqueue delivers a packet to its session's leaf FIFO. A packet arriving
// to an empty queue becomes the leaf's logical head and triggers the
// paper's ARRIVE propagation. now is accepted for interface uniformity; the
// hierarchy's clocks are reference-time driven.
func (tr *Tree) Enqueue(now float64, p *packet.Packet) {
	leaf, ok := tr.leaves[p.Session]
	if !ok {
		panic(fmt.Sprintf("hier: enqueue for unknown session %d", p.Session))
	}
	leaf.fifo.Push(p)
	tr.backlog++
	if leaf.fifo.Len() == 1 {
		leaf.hol = p
		tr.arrive(leaf)
	}
	tr.RecordEnqueue(now, p.Session, p.Length)
}

// arrive implements ARRIVE lines 5–9: push the newly backlogged child into
// its parent's scheduler; if the parent has no committed packet, restart it.
func (tr *Tree) arrive(c *node) {
	n := c.parent
	n.ns.Push(c.childIdx, c.hol.Length, false)
	if n.hol == nil {
		tr.restart(n)
	}
}

// restart implements RESTART-NODE: the node commits its next packet by
// popping its scheduler (which performs the eligibility-constrained
// selection and advances V_n and T_n), then propagates upward into an
// uncommitted parent. Busy distinguishes a continuing node (just finished
// transmitting, S ← F) from a newly backlogged one (S ← max(F, V_parent)).
func (tr *Tree) restart(n *node) {
	if n.hol != nil {
		panic("hier: restart of committed node")
	}
	id, ok := n.ns.Pop()
	if ok {
		m := n.children[id]
		n.act = m
		n.hol = m.hol
		wasBusy := n.busy
		n.busy = true
		if n.parent != nil {
			n.parent.ns.Push(n.childIdx, n.hol.Length, wasBusy)
			if n.parent.hol == nil {
				tr.restart(n.parent)
			}
		}
		return
	}
	n.act = nil
	n.busy = false
	if n.parent != nil && n.parent.hol == nil {
		tr.restart(n.parent)
	}
}

// Dequeue returns the next packet to transmit (the root's committed packet)
// or nil when the hierarchy is empty. The previous packet's path is reset
// first (RESET-PATH), matching the paper's transmit-complete processing.
func (tr *Tree) Dequeue(now float64) *packet.Packet {
	if tr.inflight {
		tr.inflight = false
		tr.resetPath()
	}
	if tr.root.hol == nil {
		return nil
	}
	tr.inflight = true
	p := tr.root.hol
	tr.RecordDequeue(now, p.Session, p.Length)
	return p
}

// resetPath implements RESET-PATH(R): clear the logical queues along the
// active path top-down, advance the leaf FIFO, re-push the leaf's next head
// as a continuation, and recommit bottom-up.
func (tr *Tree) resetPath() {
	n := tr.root
	for !n.isLeaf() {
		n.hol = nil
		m := n.act
		n.act = nil
		if m == nil {
			panic("hier: reset of path without active child")
		}
		n = m
	}
	n.hol = nil
	tr.backlog--
	n.fifo.Pop()
	if !n.fifo.Empty() {
		n.hol = n.fifo.Head()
		n.parent.ns.Push(n.childIdx, n.hol.Length, true)
	}
	tr.restart(n.parent)
}
