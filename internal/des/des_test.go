package des

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var got []int
	s.At(3, func() { got = append(got, 3) })
	s.At(1, func() { got = append(got, 1) })
	s.At(2, func() { got = append(got, 2) })
	s.RunAll()
	for i, want := range []int{1, 2, 3} {
		if got[i] != want {
			t.Fatalf("order = %v", got)
		}
	}
	if s.Now() != 3 {
		t.Fatalf("Now = %g, want 3", s.Now())
	}
	if s.Fired() != 3 {
		t.Fatalf("Fired = %d, want 3", s.Fired())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.RunAll()
	for i := range got {
		if got[i] != i {
			t.Fatalf("simultaneous events out of scheduling order: %v", got)
		}
	}
}

func TestAfterAndNesting(t *testing.T) {
	s := New()
	var at float64
	s.At(1, func() {
		s.After(2, func() { at = s.Now() })
	})
	s.RunAll()
	if at != 3 {
		t.Fatalf("nested After fired at %g, want 3", at)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	ev := s.At(1, func() { fired = true })
	ev.Cancel()
	if !ev.Canceled() {
		t.Fatal("Canceled() false after Cancel")
	}
	s.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestRunHorizon(t *testing.T) {
	s := New()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.Run(3)
	if len(fired) != 3 {
		t.Fatalf("fired %v, want events at 1,2,3", fired)
	}
	if s.Now() != 3 {
		t.Fatalf("Now = %g, want 3", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	s.Run(10)
	if len(fired) != 5 {
		t.Fatalf("fired %v after second Run", fired)
	}
	if s.Now() != 10 {
		t.Fatalf("Now = %g, want 10 (clock at horizon)", s.Now())
	}
}

func TestStep(t *testing.T) {
	s := New()
	n := 0
	s.At(1, func() { n++ })
	s.At(2, func() { n++ })
	if !s.Step() || n != 1 {
		t.Fatal("first Step")
	}
	if !s.Step() || n != 2 {
		t.Fatal("second Step")
	}
	if s.Step() {
		t.Fatal("Step on empty should be false")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.At(5, func() {})
	s.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	s.At(1, func() {})
}

// TestMonotoneClockProperty: for any random event times, callbacks observe a
// non-decreasing clock equal to their scheduled time.
func TestMonotoneClockProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		times := make([]float64, 100)
		for i := range times {
			times[i] = rng.Float64() * 100
		}
		var seen []float64
		for _, at := range times {
			at := at
			s.At(at, func() { seen = append(seen, s.Now()) })
		}
		s.RunAll()
		sort.Float64s(times)
		if len(seen) != len(times) {
			return false
		}
		for i := range seen {
			if seen[i] != times[i] {
				return false
			}
			if i > 0 && seen[i] < seen[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
