// Package des is a deterministic discrete-event simulator. It replaces the
// modified MIT NETSIM simulator the paper used for its experiments (§5): a
// monotone virtual clock, a binary heap of timestamped events, and seeded
// randomness supplied by callers. Events scheduled for the same instant fire
// in scheduling order, which makes every experiment in this repository
// reproducible bit-for-bit.
package des

import (
	"container/heap"
	"fmt"
	"math"
	"time"

	"hpfq/internal/obs"
)

// Event is a scheduled callback. Cancel prevents a pending event from firing.
type Event struct {
	time     float64
	seq      uint64
	fn       func()
	index    int // heap index, -1 once fired or cancelled
	canceled bool
}

// Time returns the simulation time the event is scheduled for.
func (e *Event) Time() float64 { return e.time }

// Cancel marks the event so it will not fire. Cancelling an event that has
// already fired is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// Canceled reports whether Cancel was called.
func (e *Event) Canceled() bool { return e.canceled }

// Sim is a discrete-event simulation kernel. The zero value is not usable;
// call New.
type Sim struct {
	now       float64
	events    eventHeap
	seq       uint64
	fired     uint64
	highWater int           // largest heap size observed
	wall      time.Duration // wall-clock time spent inside Run/RunAll
}

// New returns a simulator with the clock at zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current simulation time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Fired returns the number of events executed so far.
func (s *Sim) Fired() uint64 { return s.fired }

// Pending returns the number of events scheduled but not yet fired.
func (s *Sim) Pending() int { return s.events.Len() }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a bug in the caller.
func (s *Sim) At(t float64, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("des: scheduling event at %g before now %g", t, s.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("des: invalid event time %g", t))
	}
	s.seq++
	ev := &Event{time: t, seq: s.seq, fn: fn}
	heap.Push(&s.events, ev)
	if n := s.events.Len(); n > s.highWater {
		s.highWater = n
	}
	return ev
}

// After schedules fn to run d seconds from now.
func (s *Sim) After(d float64, fn func()) *Event {
	return s.At(s.now+d, fn)
}

// Step fires the next pending event. It returns false when no events remain.
func (s *Sim) Step() bool {
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(*Event)
		if ev.canceled {
			continue
		}
		s.now = ev.time
		s.fired++
		ev.fn()
		return true
	}
	return false
}

// Run fires events in timestamp order until the clock would pass `until`.
// Events scheduled exactly at `until` are fired. The clock is left at
// `until` so subsequent scheduling is relative to the horizon.
func (s *Sim) Run(until float64) {
	start := time.Now()
	defer func() { s.wall += time.Since(start) }()
	for s.events.Len() > 0 {
		ev := s.events[0]
		if ev.canceled {
			heap.Pop(&s.events)
			continue
		}
		if ev.time > until {
			break
		}
		heap.Pop(&s.events)
		s.now = ev.time
		s.fired++
		ev.fn()
	}
	if s.now < until {
		s.now = until
	}
}

// RunAll fires every pending event. Use with workloads that terminate;
// a source that reschedules itself forever will never drain.
func (s *Sim) RunAll() {
	start := time.Now()
	defer func() { s.wall += time.Since(start) }()
	for s.Step() {
	}
}

// Metrics returns the kernel's event counters: scheduling volume, heap
// high-water mark, and the ratio of simulated time to wall-clock time spent
// in Run/RunAll (individually Stepped events are not timed).
func (s *Sim) Metrics() obs.SimMetrics {
	return obs.SimMetrics{
		EventsScheduled: s.seq,
		EventsFired:     s.fired,
		EventsPending:   s.events.Len(),
		HeapHighWater:   s.highWater,
		SimTime:         s.now,
		WallSeconds:     s.wall.Seconds(),
	}
}

// eventHeap orders by (time, seq) so simultaneous events fire in the order
// they were scheduled.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
