// Benchmark harness: one benchmark per table/figure of the paper (see
// EXPERIMENTS.md and DESIGN.md §3), plus the §3.4 complexity-claim
// microbenchmarks. Regenerate everything with
//
//	go test -bench=. -benchmem .
//
// The Benchmark* wall-clock numbers measure this implementation's cost of
// regenerating each experiment; the experiment results themselves are
// printed by cmd/hpfqsim and asserted in the test suite.
package hpfq_test

import (
	"fmt"
	"math/rand"
	"testing"

	"hpfq/internal/des"
	"hpfq/internal/experiments"
	"hpfq/internal/hier"
	"hpfq/internal/netsim"
	"hpfq/internal/obs"
	"hpfq/internal/packet"
	"hpfq/internal/sched"
	"hpfq/internal/topo"
)

// BenchmarkFig2 (E1): the Fig. 2 service-order example across GPS, WFQ,
// WF²Q and WF²Q+.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig2()
		if res.LeadingRun("WFQ") < 9 {
			b.Fatal("unexpected WFQ order")
		}
	}
}

// BenchmarkBurst (E3, §3.1): the 1001-class 100 Mbps example (paper: WFQ
// 120 ms vs GPS 0.4 ms).
func BenchmarkBurst(b *testing.B) {
	for _, algo := range []string{"WFQ", "WF2Q", "WF2Q+"} {
		b.Run(algo, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunBurst(algo, 1001); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchDelay(b *testing.B, sc experiments.Scenario) {
	for _, algo := range []string{"WFQ", "WF2Q+"} {
		b.Run("H-"+algo, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunDelay(algo, sc, 3, 1)
				if err != nil {
					b.Fatal(err)
				}
				if res.Delays.Count() == 0 {
					b.Fatal("no RT-1 packets")
				}
			}
		})
	}
}

// BenchmarkFig4 (E4): scenario 1 delay experiment (nominal rates).
func BenchmarkFig4(b *testing.B) { benchDelay(b, experiments.ScenarioNominal) }

// BenchmarkFig5 (E5): the service-lag curves come from the same scenario-1
// run; this bench additionally extracts the lag.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunDelay("WFQ", experiments.ScenarioNominal, 3, 1)
		if err != nil {
			b.Fatal(err)
		}
		if res.Curve.MaxLag() == 0 {
			b.Fatal("no lag measured")
		}
	}
}

// BenchmarkFig6 (E6): scenario 2 (overloaded Poisson cross traffic).
func BenchmarkFig6(b *testing.B) { benchDelay(b, experiments.ScenarioOverload) }

// BenchmarkFig7 (E7): scenario 3 (overload + constant/train cross traffic).
func BenchmarkFig7(b *testing.B) { benchDelay(b, experiments.ScenarioOverloadCS) }

// BenchmarkFig9 (E8): the §5.2 TCP link-sharing experiment over the
// Fig. 8(b) schedule.
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig9("WF2Q+", 10, 1)
		if err != nil {
			b.Fatal(err)
		}
		if res.Delivered[0] == 0 {
			b.Fatal("TCP1 delivered nothing")
		}
	}
}

// BenchmarkWFI (E9): the WFI measurement at N=64 per algorithm — the
// Theorem 3/4 table.
func BenchmarkWFI(b *testing.B) {
	for _, algo := range []string{"WFQ", "SCFQ", "SFQ", "DRR", "WF2Q", "WF2Q+"} {
		b.Run(algo, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunWFISweep(algo, []int{64}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBound (E10): the Corollary 2 delay-bound check.
func BenchmarkBound(b *testing.B) {
	for _, algo := range []string{"WF2Q+", "WFQ"} {
		b.Run("H-"+algo, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunBound(algo, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchedOps (E11, §3.4): per-packet scheduling cost vs the number
// of backlogged sessions. WF²Q+ stays O(log N); WFQ and WF²Q pay the GPS
// clock, whose worst case is O(N).
func BenchmarkSchedOps(b *testing.B) {
	for _, algo := range []string{"WF2Q+", "WFQ", "WF2Q", "SCFQ", "SFQ", "DRR"} {
		for _, n := range []int{16, 256, 4096} {
			b.Run(fmt.Sprintf("%s/N=%d", algo, n), func(b *testing.B) {
				s, err := sched.New(algo, 1e9)
				if err != nil {
					b.Fatal(err)
				}
				rng := rand.New(rand.NewSource(1))
				for i := 0; i < n; i++ {
					s.AddSession(i, 1e9/float64(n))
				}
				// Pre-fill every session with two packets, then cycle:
				// dequeue one, enqueue one on the same session.
				now := 0.0
				for i := 0; i < n; i++ {
					s.Enqueue(now, packet.New(i, 8000))
					s.Enqueue(now, packet.New(i, 8000))
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p := s.Dequeue(now)
					now += 8000 / 1e9
					p2 := packet.New(p.Session, 8000)
					s.Enqueue(now, p2)
					_ = rng
				}
			})
		}
	}
}

// BenchmarkSchedOpsBursty stresses the GPS-clock worst case: sessions
// alternate between idle and backlogged so the fluid system's
// session-departure breakpoints pile up (the O(N) advance the paper
// attributes to WFQ/WF²Q and removes in WF²Q+).
func BenchmarkSchedOpsBursty(b *testing.B) {
	for _, algo := range []string{"WF2Q+", "WFQ", "WF2Q"} {
		for _, n := range []int{256, 4096} {
			b.Run(fmt.Sprintf("%s/N=%d", algo, n), func(b *testing.B) {
				s, err := sched.New(algo, 1e9)
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < n; i++ {
					s.AddSession(i, 1e9/float64(n))
				}
				now := 0.0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// A whole batch arrives, drains completely (every
					// session leaves the GPS backlog), repeat.
					if s.Backlog() == 0 {
						b.StopTimer()
						now += 1.0
						b.StartTimer()
						for j := 0; j < n; j++ {
							s.Enqueue(now, packet.New(j, 8000))
						}
					}
					s.Dequeue(now)
					now += 8000 / 1e9
				}
			})
		}
	}
}

// BenchmarkHierarchyDepth: per-packet cost of H-WF²Q+ vs tree depth — each
// level adds one O(log N) node decision (Theorem 1's per-level WFI sum has
// a per-level time cost mirror).
func BenchmarkHierarchyDepth(b *testing.B) {
	for _, depth := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			// Chain of interior nodes, 4 leaves at each level.
			sess := 0
			build := func() *topo.Node { return nil }
			_ = build
			var mk func(d int) *topo.Node
			mk = func(d int) *topo.Node {
				kids := []*topo.Node{}
				for i := 0; i < 3; i++ {
					kids = append(kids, topo.Leaf(fmt.Sprintf("l%d", sess), 1, sess))
					sess++
				}
				if d > 1 {
					kids = append(kids, mk(d-1))
				}
				return topo.Interior(fmt.Sprintf("n%d", d), 1, kids...)
			}
			top := mk(depth)
			tree, err := hier.New(top, 1e9, "WF2Q+")
			if err != nil {
				b.Fatal(err)
			}
			sim := des.New()
			link := netsim.NewLink(sim, 1e9, tree)
			nsess := sess
			link.OnDepart(func(p *packet.Packet) {
				link.Arrive(packet.New(p.Session, 8000))
			})
			for i := 0; i < nsess; i++ {
				link.Arrive(packet.New(i, 8000))
				link.Arrive(packet.New(i, 8000))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Step()
			}
		})
	}
}

// BenchmarkAblation isolates the paper's two design choices. The algorithm
// matrix factors them directly:
//
//   - eligibility (SEFF vs SFF) with the same exact clock: WF2Q vs WFQ —
//     the WFI difference (E9) is attributable to SEFF alone;
//   - the clock (V_WF2Q+ vs V_GPS) with the same SEFF policy: WF2Q+ vs
//     WF2Q — the complexity difference (E11) is attributable to the clock
//     alone. This bench measures that second axis head to head, and the
//     float-vs-integer virtual time representation as a third axis.
func BenchmarkAblation(b *testing.B) {
	for _, algo := range []string{"WF2Q", "WF2Q+", "WF2Q+fixed"} {
		b.Run(algo, func(b *testing.B) {
			s, err := sched.New(algo, 1e9)
			if err != nil {
				b.Fatal(err)
			}
			const n = 512
			for i := 0; i < n; i++ {
				s.AddSession(i, 1e9/n)
			}
			for i := 0; i < n; i++ {
				s.Enqueue(0, packet.New(i, 8000))
				s.Enqueue(0, packet.New(i, 8000))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := s.Dequeue(0)
				s.Enqueue(0, packet.New(p.Session, 8000))
			}
		})
	}
}

// BenchmarkMetricsOverhead prices the observability layer on the WF²Q+ hot
// path: the same enqueue/dequeue cycle with the collector disabled (the
// default — one branch per record call), with metrics accumulating, and with
// metrics plus a ring tracer. The disabled path is the one every
// uninstrumented simulation pays and must stay within noise (≤5%) of the
// pre-observability baseline.
func BenchmarkMetricsOverhead(b *testing.B) {
	run := func(b *testing.B, configure func(sched.Scheduler)) {
		s, err := sched.New("WF2Q+", 1e9)
		if err != nil {
			b.Fatal(err)
		}
		const n = 64
		for i := 0; i < n; i++ {
			s.AddSession(i, 1e9/n)
		}
		configure(s)
		for i := 0; i < n; i++ {
			s.Enqueue(0, packet.New(i, 8000))
		}
		b.ReportAllocs()
		b.ResetTimer()
		now := 0.0
		for i := 0; i < b.N; i++ {
			p := s.Dequeue(now)
			now += 8000 / 1e9
			s.Enqueue(now, packet.New(p.Session, 8000))
		}
	}
	b.Run("off", func(b *testing.B) {
		run(b, func(sched.Scheduler) {})
	})
	b.Run("metrics", func(b *testing.B) {
		run(b, func(s sched.Scheduler) { s.EnableMetrics() })
	})
	b.Run("metrics+trace", func(b *testing.B) {
		run(b, func(s sched.Scheduler) {
			s.EnableMetrics()
			s.SetTracer(obs.NewRingTracer(1024))
		})
	})
}

// BenchmarkEnqueueDequeue is the core WF²Q+ hot path in isolation.
func BenchmarkEnqueueDequeue(b *testing.B) {
	s, _ := sched.New("WF2Q+", 1e9)
	const n = 64
	for i := 0; i < n; i++ {
		s.AddSession(i, 1e9/n)
	}
	for i := 0; i < n; i++ {
		s.Enqueue(0, packet.New(i, 8000))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := s.Dequeue(0)
		s.Enqueue(0, packet.New(p.Session, 8000))
	}
}
