package hpfq_test

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"hpfq"
)

// TestPublicAPIQuickstart is the README quickstart, asserted: a WF²Q+ link
// delivers guarantees through the public facade.
func TestPublicAPIQuickstart(t *testing.T) {
	sim := hpfq.NewSim()
	sched := hpfq.NewWF2QPlus(10e6)
	sched.AddSession(0, 7e6)
	sched.AddSession(1, 3e6)
	link := hpfq.NewLink(sim, 10e6, sched)

	served := map[int]float64{}
	link.OnDepart(func(p *hpfq.Packet) {
		served[p.Session] += p.Length
		link.Arrive(hpfq.NewPacket(p.Session, 10000))
	})
	// Two packets outstanding per session: a session whose queue drains the
	// instant its packet enters service is not "continuously backlogged" in
	// the paper's sense, and the fairness guarantees don't apply to it.
	for s := 0; s < 2; s++ {
		link.Arrive(hpfq.NewPacket(s, 10000))
		link.Arrive(hpfq.NewPacket(s, 10000))
	}
	sim.Run(10)

	if r := served[0] / 10; math.Abs(r-7e6)/7e6 > 0.03 {
		t.Errorf("session 0 rate %.0f, want ~7e6", r)
	}
	if r := served[1] / 10; math.Abs(r-3e6)/3e6 > 0.03 {
		t.Errorf("session 1 rate %.0f, want ~3e6", r)
	}
}

// TestPublicAPIHierarchy: the README link-sharing snippet through New and
// NewHierarchy, with every registered algorithm.
func TestPublicAPIHierarchy(t *testing.T) {
	top := hpfq.Interior("link", 1,
		hpfq.Interior("A1", 0.5,
			hpfq.Leaf("rt", 0.6, 0),
			hpfq.Leaf("be", 0.4, 1)),
		hpfq.Leaf("A2", 0.5, 2))

	for _, algo := range []hpfq.Algorithm{hpfq.WF2QPlus, hpfq.WFQ, hpfq.WF2Q, hpfq.SCFQ, hpfq.SFQ, hpfq.DRR} {
		tree, err := hpfq.NewHierarchy(top, 45e6, algo)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if tree.Name() != "H-"+string(algo) {
			t.Errorf("Name = %q", tree.Name())
		}
		sim := hpfq.NewSim()
		link := hpfq.NewLink(sim, 45e6, tree)
		served := map[int]float64{}
		link.OnDepart(func(p *hpfq.Packet) {
			served[p.Session] += p.Length
			link.Arrive(hpfq.NewPacket(p.Session, hpfq.Bits8KB))
		})
		for s := 0; s < 3; s++ {
			link.Arrive(hpfq.NewPacket(s, hpfq.Bits8KB))
			link.Arrive(hpfq.NewPacket(s, hpfq.Bits8KB))
		}
		sim.Run(5)
		want := map[int]float64{0: 13.5e6, 1: 9e6, 2: 22.5e6}
		for s, w := range want {
			if got := served[s] / 5; math.Abs(got-w)/w > 0.06 {
				t.Errorf("%s: session %d rate %.0f, want %.0f", algo, s, got, w)
			}
		}
	}
}

// TestPublicAPIFluid: GPS and H-GPS reference systems and IdealShares.
func TestPublicAPIFluid(t *testing.T) {
	g := hpfq.NewGPS(1)
	g.AddSession(0, 0.5)
	g.Arrive(0, hpfq.NewPacket(0, 2))
	if end := g.Drain(); math.Abs(end-2) > 1e-9 {
		t.Errorf("GPS drain at %g, want 2", end)
	}

	top := hpfq.Interior("r", 1,
		hpfq.Leaf("a", 0.7, 0),
		hpfq.Leaf("b", 0.3, 1))
	h, err := hpfq.NewHGPS(top, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Arrive(0, hpfq.NewPacket(0, 70))
	h.Arrive(0, hpfq.NewPacket(1, 30))
	h.Drain()
	if d := h.Departures(); len(d) != 2 || math.Abs(d[0].Time-10) > 1e-9 {
		t.Errorf("H-GPS departures %v", d)
	}

	shares := hpfq.IdealShares(top, 10, map[int]bool{1: true})
	if shares[1] != 10 {
		t.Errorf("lone active session share %g, want full link", shares[1])
	}

	c := hpfq.NewGPSClock(1)
	c.AddSession(0, 0.5)
	c.Stamp(0, 1)
	c.Advance(0.5)
	if c.V() != 1 {
		t.Errorf("clock V = %g, want 1", c.V())
	}
}

// TestPublicAPITCPAndTraffic: TCP source plus traffic generators through
// the facade (the tcpfairness example, asserted).
func TestPublicAPITCPAndTraffic(t *testing.T) {
	sched, err := hpfq.New(hpfq.WF2QPlus, 10e6)
	if err != nil {
		t.Fatal(err)
	}
	sched.AddSession(0, 4e6)
	sched.AddSession(1, 6e6)
	sim := hpfq.NewSim()
	link := hpfq.NewLink(sim, 10e6, sched)
	link.SetSessionLimit(0, 20)
	served := map[int]float64{}
	link.OnDepart(func(p *hpfq.Packet) { served[p.Session] += p.Length })

	src := hpfq.NewTCPSource(sim, link, 0, 12000, 0.02, 0)
	src.Run()
	(&hpfq.CBR{Session: 1, Rate: 9e6, PktBits: 12000, Stop: 10}).
		Run(sim, hpfq.ToLink(link))
	sim.Run(10)

	if got := served[0] / 10; got < 3e6 {
		t.Errorf("TCP got %.0f bps of its 4 Mbps share", got)
	}
	if got := served[1] / 10; got > 6.3e6 {
		t.Errorf("flood got %.0f bps, limited to ~6 Mbps", got)
	}
	if src.Delivered() == 0 {
		t.Error("TCP delivered nothing")
	}
}

// TestPublicAPILeakyBucket: the regulator through the facade.
func TestPublicAPILeakyBucket(t *testing.T) {
	sim := hpfq.NewSim()
	var times []float64
	lb := hpfq.NewLeakyBucket(sim, 1000, 1000, func(p *hpfq.Packet) {
		times = append(times, sim.Now())
	})
	emit := lb.Emit()
	sim.At(0, func() {
		for i := 0; i < 5; i++ {
			emit(hpfq.NewPacket(0, 1000))
		}
	})
	sim.RunAll()
	// σ = one packet: first at 0, then one per second.
	want := []float64{0, 1, 2, 3, 4}
	for i, w := range want {
		if math.Abs(times[i]-w) > 1e-6 {
			t.Fatalf("release %d at %g, want %g", i, times[i], w)
		}
	}
}

// TestAlgorithmsList: registry exposure.
func TestAlgorithmsList(t *testing.T) {
	got := hpfq.Algorithms()
	if len(got) != 12 {
		t.Errorf("Algorithms() = %v", got)
	}
	if _, err := hpfq.New("bogus", 1); err == nil {
		t.Error("bogus algorithm should error")
	}
	if _, err := hpfq.NewHierarchy(hpfq.Leaf("x", 1, 0), 1, hpfq.WF2QPlus); err == nil {
		t.Error("leaf-only topology should error")
	}
}

// TestSentinelErrors: every construction failure is matchable with
// errors.Is against the exported sentinels.
func TestSentinelErrors(t *testing.T) {
	if _, err := hpfq.New("bogus", 1); !errors.Is(err, hpfq.ErrUnknownAlgorithm) {
		t.Errorf("New(bogus): %v, want ErrUnknownAlgorithm", err)
	}
	if _, err := hpfq.NewNode("bogus", 1); !errors.Is(err, hpfq.ErrUnknownAlgorithm) {
		t.Errorf("NewNode(bogus): %v, want ErrUnknownAlgorithm", err)
	}
	if _, err := hpfq.NewNode(hpfq.FIFO, 1); !errors.Is(err, hpfq.ErrNoNodeForm) {
		t.Errorf("NewNode(FIFO): %v, want ErrNoNodeForm", err)
	}
	if _, err := hpfq.NewHierarchy(hpfq.Leaf("x", 1, 0), 1, hpfq.WF2QPlus); !errors.Is(err, hpfq.ErrBadTopology) {
		t.Errorf("NewHierarchy(leaf root): %v, want ErrBadTopology", err)
	}
	dup := hpfq.Interior("r", 1, hpfq.Leaf("a", 1, 0), hpfq.Leaf("b", 1, 0))
	if _, err := hpfq.NewHierarchy(dup, 1, hpfq.WF2QPlus); !errors.Is(err, hpfq.ErrBadTopology) {
		t.Errorf("NewHierarchy(dup session): %v, want ErrBadTopology", err)
	}
	if _, err := hpfq.NewHGPS(dup, 1); !errors.Is(err, hpfq.ErrBadTopology) {
		t.Errorf("NewHGPS(dup session): %v, want ErrBadTopology", err)
	}
	good := hpfq.Interior("r", 1, hpfq.Leaf("a", 1, 0), hpfq.Leaf("b", 1, 1))
	if _, err := hpfq.NewHierarchy(good, 1, "bogus"); !errors.Is(err, hpfq.ErrUnknownAlgorithm) {
		t.Errorf("NewHierarchy(bogus algo): %v, want ErrUnknownAlgorithm", err)
	}
	if _, err := hpfq.NewHierarchy(good, 1, hpfq.WF2QPlus,
		hpfq.WithNodePolicy("r", hpfq.Policy{})); !errors.Is(err, hpfq.ErrNoNodeForm) {
		t.Errorf("NewHierarchy(nil node policy): %v, want ErrNoNodeForm", err)
	}
	if _, err := hpfq.New(hpfq.WF2QPlus, 1, hpfq.WithPolicy(hpfq.Policy{})); !errors.Is(err, hpfq.ErrNoFlatForm) {
		t.Errorf("New(nil flat policy): %v, want ErrNoFlatForm", err)
	}
}

// TestOptionsMetricsAndTracer: the options API end to end — every algorithm
// built with WithMetrics and WithTracer yields a conserved, populated
// snapshot and a coherent event stream.
func TestOptionsMetricsAndTracer(t *testing.T) {
	for _, algo := range hpfq.Algorithms() {
		ring := hpfq.NewRingTracer(64)
		s, err := hpfq.New(algo, 1e6, hpfq.WithMetrics(), hpfq.WithTracer(ring))
		if err != nil {
			t.Fatal(err)
		}
		if !s.MetricsEnabled() {
			t.Fatalf("%s: WithMetrics did not enable metrics", algo)
		}
		s.AddSession(0, 0.6e6)
		s.AddSession(1, 0.4e6)
		now := 0.0
		for i := 0; i < 10; i++ {
			s.Enqueue(now, hpfq.NewPacket(i%2, 8000))
		}
		for p := s.Dequeue(now); p != nil; p = s.Dequeue(now) {
			now += p.Length / 1e6
		}
		m := s.Snapshot()
		if !m.Enabled || m.Enqueued.Packets != 10 || m.Dequeued.Packets != 10 {
			t.Errorf("%s: snapshot %+v", algo, m)
		}
		if !m.Conserved() {
			t.Errorf("%s: conservation violated", algo)
		}
		sess, ok := m.Session(0)
		if !ok || sess.Enqueued.Packets != 5 {
			t.Errorf("%s: session 0 snapshot %+v", algo, sess)
		}
		if got := ring.Total(); got != 20 {
			t.Errorf("%s: traced %d events, want 20", algo, got)
		}
	}
}

// TestHierarchyObservability: metrics and traces through a hierarchy —
// root snapshot is conserved, interior nodes are visible by name, and the
// virtual-time trace fields are populated for a VT discipline.
func TestHierarchyObservability(t *testing.T) {
	top := hpfq.Interior("link", 1,
		hpfq.Interior("A1", 0.5,
			hpfq.Leaf("rt", 0.6, 0),
			hpfq.Leaf("be", 0.4, 1)),
		hpfq.Leaf("A2", 0.5, 2))
	ring := hpfq.NewRingTracer(4096)
	tree, err := hpfq.NewHierarchy(top, 45e6, hpfq.WF2QPlus,
		hpfq.WithMetrics(), hpfq.WithTracer(ring))
	if err != nil {
		t.Fatal(err)
	}
	sim := hpfq.NewSim()
	link := hpfq.NewLink(sim, 45e6, tree)
	for s := 0; s < 3; s++ {
		for i := 0; i < 4; i++ {
			link.Arrive(hpfq.NewPacket(s, hpfq.Bits8KB))
		}
	}
	sim.RunAll()

	m := tree.Snapshot()
	if m.Enqueued.Packets != 12 || m.Dequeued.Packets != 12 || !m.Conserved() {
		t.Errorf("tree snapshot %+v", m)
	}
	if sess, ok := m.Session(2); !ok || sess.Rate != 22.5e6 {
		t.Errorf("session 2 rate %+v", sess)
	}

	nodes := tree.NodeSnapshots()
	if len(nodes) != 2 {
		t.Fatalf("NodeSnapshots: %d nodes, want 2 (link, A1)", len(nodes))
	}
	if a1, ok := nodes["A1"]; !ok || a1.Dequeued.Packets != 8 {
		t.Errorf("A1 snapshot %+v", nodes["A1"])
	}

	var vtDequeues, a1Events int
	for _, ev := range ring.Events() {
		if ev.Type == hpfq.EventDequeue && ev.HasVT {
			vtDequeues++
		}
		if ev.Node == "A1" {
			a1Events++
		}
	}
	if vtDequeues == 0 {
		t.Error("no dequeue events carried virtual times")
	}
	if a1Events == 0 {
		t.Error("no events from interior node A1")
	}
}

// TestJSONLTrace: the stream tracer emits one valid JSON object per line.
func TestJSONLTrace(t *testing.T) {
	var buf bytes.Buffer
	jt := hpfq.NewJSONLTracer(&buf)
	s, err := hpfq.New(hpfq.WF2QPlus, 1e6, hpfq.WithTracer(jt))
	if err != nil {
		t.Fatal(err)
	}
	s.AddSession(0, 1e6)
	s.Enqueue(0, hpfq.NewPacket(0, 8000))
	s.Dequeue(0)
	if err := jt.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
	for _, ln := range lines {
		if !strings.HasPrefix(ln, "{") || !strings.HasSuffix(ln, "}") {
			t.Errorf("not a JSON object line: %s", ln)
		}
	}
	if !strings.Contains(lines[1], "vfinish") {
		t.Errorf("dequeue line missing virtual times: %s", lines[1])
	}
}

// TestMixedHierarchy: WithNodes lets callers mix disciplines —
// WF²Q+ near the root, DRR at a cheap leaf level.
func TestMixedHierarchy(t *testing.T) {
	top := hpfq.Interior("root", 1,
		hpfq.Interior("cheap", 0.5,
			hpfq.Leaf("a", 0.5, 0),
			hpfq.Leaf("b", 0.5, 1)),
		hpfq.Leaf("c", 0.5, 2))
	depth0 := true
	mixed := func(rate float64) hpfq.NodeScheduler {
		if depth0 {
			depth0 = false
			return hpfq.NewWF2QPlusNode(rate)
		}
		node, err := hpfq.NewNode(hpfq.DRR, rate)
		if err != nil {
			t.Fatal(err)
		}
		return node
	}
	tree, err := hpfq.NewHierarchy(top, 1e6, "mixed", hpfq.WithNodes(mixed))
	if err != nil {
		t.Fatal(err)
	}
	sim := hpfq.NewSim()
	link := hpfq.NewLink(sim, 1e6, tree)
	served := map[int]float64{}
	link.OnDepart(func(p *hpfq.Packet) {
		served[p.Session] += p.Length
		link.Arrive(hpfq.NewPacket(p.Session, 8000))
	})
	for s := 0; s < 3; s++ {
		link.Arrive(hpfq.NewPacket(s, 8000))
		link.Arrive(hpfq.NewPacket(s, 8000))
	}
	sim.Run(10)
	for s, w := range map[int]float64{0: 0.25e6, 1: 0.25e6, 2: 0.5e6} {
		if got := served[s] / 10; math.Abs(got-w)/w > 0.06 {
			t.Errorf("session %d rate %.0f, want %.0f", s, got, w)
		}
	}
}

// TestPublicAPIDataplane pushes datagrams through the public data-plane
// facade over an in-memory pipe and checks delivery plus conservation.
func TestPublicAPIDataplane(t *testing.T) {
	if _, err := hpfq.NewDataplane(hpfq.Algorithm("nope"), 1e6); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := hpfq.NewDataplane(hpfq.WF2QPlus, 0); err == nil {
		t.Fatal("zero rate accepted")
	}

	d, err := hpfq.NewDataplane(hpfq.WF2QPlus, 1e9,
		hpfq.WithQueueCap(64), hpfq.WithByteCap(1<<20),
		hpfq.WithBurst(1e5), hpfq.WithDataplaneMetrics())
	if err != nil {
		t.Fatal(err)
	}
	d.AddClass(0, 7.5e8)
	d.AddClass(1, 2.5e8)

	pipe := hpfq.NewPacketPipe(64)
	if err := d.Start(pipe); err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := d.Ingest(i%2, make([]byte, 200)); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 2048)
	for i := 0; i < n; i++ {
		if _, err := pipe.ReadPacket(buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if m := d.Snapshot(); !m.Conserved() {
		t.Error("metrics not conserved")
	}
}

// TestPublicAPIDataplaneHierarchy drives the hierarchical data-plane through
// the same topology type the simulator uses.
func TestPublicAPIDataplaneHierarchy(t *testing.T) {
	top := hpfq.Interior("root", 1,
		hpfq.Interior("agg", 3,
			hpfq.Leaf("a", 2, 0),
			hpfq.Leaf("b", 1, 1)),
		hpfq.Leaf("c", 1, 2))
	d, err := hpfq.NewDataplane(hpfq.WF2QPlus, 1e9,
		hpfq.WithTopology(top), hpfq.WithDataplaneMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d.Classes()); got != 3 {
		t.Fatalf("classes = %d, want 3", got)
	}
	pipe := hpfq.NewPacketPipe(16)
	if err := d.Start(pipe); err != nil {
		t.Fatal(err)
	}
	for _, class := range d.Classes() {
		if err := d.Ingest(class, make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 256)
	for i := 0; i < 3; i++ {
		if _, err := pipe.ReadPacket(buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPolicySelection exercises the first-class Policy API: WithPolicy
// overriding the algorithm, WithNodePolicy and ':policy' topology clauses
// pinning individual hierarchy nodes, and the Option type doubling as a
// DataplaneOption.
func TestPolicySelection(t *testing.T) {
	sp, ok := hpfq.PolicyByName(hpfq.SP)
	if !ok {
		t.Fatal("SP has no registered policy")
	}
	if _, ok := hpfq.PolicyByName(hpfq.FIFO); ok {
		t.Error("FIFO should have no PIFO policy form")
	}
	if got := len(hpfq.Policies()); got != 10 {
		t.Errorf("Policies() = %v", hpfq.Policies())
	}

	// WithPolicy overrides the algorithm argument of New.
	s, err := hpfq.New(hpfq.WF2QPlus, 1e6, hpfq.WithPolicy(sp))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "SP" {
		t.Errorf("WithPolicy scheduler Name = %q, want SP", s.Name())
	}
	n, err := hpfq.NewNode(hpfq.WF2QPlus, 1e6, hpfq.WithPolicy(sp))
	if err != nil {
		t.Fatal(err)
	}
	if n.Name() != "SP" {
		t.Errorf("WithPolicy node Name = %q, want SP", n.Name())
	}

	// A ':policy' clause pins node A to strict priority: with both of A's
	// sessions continuously backlogged, every session-0 packet departs before
	// any session-1 packet.
	top, err := hpfq.ParseTopology("root=1(A=1:SP(a0=1:0,a1=1:1),B=1(b0=1:2,b1=1:3))")
	if err != nil {
		t.Fatal(err)
	}
	drive := func(tree *hpfq.Hierarchy) []int {
		for s := 0; s < 2; s++ {
			for i := 0; i < 4; i++ {
				tree.Enqueue(0, hpfq.NewPacket(s, 8000))
			}
		}
		var order []int
		now := 0.0
		for tree.Backlog() > 0 {
			p := tree.Dequeue(now)
			if p == nil {
				break
			}
			order = append(order, p.Session)
			now += p.Length / 1e6
		}
		return order
	}
	tree, err := hpfq.NewHierarchy(top, 1e6, hpfq.WF2QPlus)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 0, 0, 1, 1, 1, 1}
	got := drive(tree)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("topo ':SP' departures %v, want %v", got, want)
		}
	}

	// WithNodePolicy beats the annotation: an inverted strict priority on A
	// flips the order. (The very first session-0 packet still departs first:
	// it was committed on arrival, before session 1 was backlogged.)
	inv := hpfq.StrictPriorityPolicy(func(id int, _ float64) float64 { return -float64(id) })
	tree, err = hpfq.NewHierarchy(top, 1e6, hpfq.WF2QPlus, hpfq.WithNodePolicy("A", inv))
	if err != nil {
		t.Fatal(err)
	}
	want = []int{0, 1, 1, 1, 1, 0, 0, 0}
	got = drive(tree)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("WithNodePolicy departures %v, want %v", got, want)
		}
	}

	// Option doubles as a DataplaneOption: policy and metrics flow through
	// NewDataplane unchanged.
	d, err := hpfq.NewDataplane(hpfq.WF2QPlus, 1e9,
		hpfq.WithPolicy(sp), hpfq.WithMetrics(), hpfq.WithQueueCap(16))
	if err != nil {
		t.Fatal(err)
	}
	d.AddClass(0, 1e9)
	if m := d.Snapshot(); m.Name != "SP" {
		t.Errorf("dataplane scheduler Name = %q, want SP", m.Name)
	}
}
