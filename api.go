package hpfq

import (
	"io"
	"time"

	"hpfq/internal/core"
	"hpfq/internal/ctl"
	"hpfq/internal/dataplane"
	"hpfq/internal/des"
	"hpfq/internal/errs"
	"hpfq/internal/fec"
	"hpfq/internal/fluid"
	"hpfq/internal/hier"
	"hpfq/internal/netsim"
	"hpfq/internal/obs"
	"hpfq/internal/overload"
	"hpfq/internal/packet"
	"hpfq/internal/pifo"
	"hpfq/internal/sched"
	"hpfq/internal/shaper"
	"hpfq/internal/shard"
	"hpfq/internal/tcp"
	"hpfq/internal/topo"
	"hpfq/internal/traffic"
)

// Algorithm names a scheduling discipline accepted by New, NewNode and
// NewHierarchy. The constants below cover the registry; untyped string
// literals convert implicitly, so Algorithm("WF2Q+") also works.
type Algorithm string

// Registered algorithms.
const (
	WF2QPlus Algorithm = "WF2Q+" // the paper's contribution (§3.4)
	WFQ      Algorithm = "WFQ"   // weighted fair queueing / PGPS
	WF2Q     Algorithm = "WF2Q"  // worst-case fair WFQ (exact GPS clock)
	SCFQ     Algorithm = "SCFQ"  // self-clocked fair queueing
	SFQ      Algorithm = "SFQ"   // start-time fair queueing
	DRR      Algorithm = "DRR"   // deficit round robin
	FIFO     Algorithm = "FIFO"  // no isolation (flat only)
	SP       Algorithm = "SP"    // strict priority by flow id (PIFO substrate)
	EDF      Algorithm = "EDF"   // earliest deadline first (PIFO substrate)
	SRPT     Algorithm = "SRPT"  // shortest remaining processing time (PIFO substrate)
	LSTF     Algorithm = "LSTF"  // least slack time first (PIFO substrate)
)

// Sentinel errors, matchable with errors.Is on anything returned by New,
// NewNode, NewHierarchy and NewHGPS.
var (
	// ErrUnknownAlgorithm reports an algorithm name missing from the
	// registry.
	ErrUnknownAlgorithm = errs.ErrUnknownAlgorithm
	// ErrBadTopology reports a malformed link-sharing tree.
	ErrBadTopology = errs.ErrBadTopology
	// ErrNoNodeForm reports an algorithm (FIFO) with no hierarchical node
	// form.
	ErrNoNodeForm = errs.ErrNoNodeForm
	// ErrNoFlatForm reports a policy with no standalone scheduler form.
	ErrNoFlatForm = errs.ErrNoFlatForm
)

// Data-plane sentinel errors, matchable with errors.Is on anything returned
// by Dataplane.Ingest, Start and AddClass.
var (
	// ErrDataplaneClosed reports an Ingest or Start after Close.
	ErrDataplaneClosed = dataplane.ErrClosed
	// ErrNoClass reports an Ingest for an unregistered class id.
	ErrNoClass = dataplane.ErrNoClass
	// ErrClassQueueFull reports an arrival beyond a class's queue or byte
	// cap; the datagram was dropped and the drop recorded.
	ErrClassQueueFull = dataplane.ErrQueueFull
	// ErrClassDraining reports an Ingest for a class RemoveClass is
	// retiring: the staged remainder still leaves in scheduled order, new
	// arrivals are refused.
	ErrClassDraining = dataplane.ErrClassDraining
)

// Bits8KB is the paper's 8 KB packet size in bits.
const Bits8KB = packet.Bits8KB

// Packet is the unit of service; see internal/packet.
type Packet = packet.Packet

// NewPacket returns a packet for a session with a length in bits.
func NewPacket(session int, lengthBits float64) *Packet {
	return packet.New(session, lengthBits)
}

// Scheduler is a standalone packet fair queueing server. Every scheduler
// carries the observability surface: EnableMetrics, SetTracer, Snapshot.
type Scheduler = sched.Scheduler

// NodeScheduler is a PFQ server node usable inside a hierarchy.
type NodeScheduler = sched.NodeScheduler

// Observability re-exports; see internal/obs.
type (
	// Metrics is a point-in-time snapshot of one server's counters.
	Metrics = obs.Metrics
	// SessionMetrics is the per-session slice of a Metrics snapshot.
	SessionMetrics = obs.SessionMetrics
	// DelayStats summarizes observed queueing delays.
	DelayStats = obs.DelayStats
	// SimMetrics are the DES kernel counters.
	SimMetrics = obs.SimMetrics
	// Tracer receives per-packet events from instrumented servers.
	Tracer = obs.Tracer
	// TraceEvent is one enqueue/dequeue/drop record, with virtual-time
	// fields on dequeues from virtual-clock schedulers.
	TraceEvent = obs.Event
	// RingTracer keeps the last N events in memory.
	RingTracer = obs.RingTracer
	// JSONLTracer streams events as JSON lines.
	JSONLTracer = obs.JSONLTracer
)

// Trace event types.
const (
	EventEnqueue = obs.EventEnqueue
	EventDequeue = obs.EventDequeue
	EventDrop    = obs.EventDrop
	EventRetry   = obs.EventRetry
)

// Drop reasons, as recorded in Metrics.DropReasons and on EventDrop trace
// events. The first three are ingest-time policy; the rest happen after
// dequeue, on the data-plane's egress side.
const (
	// DropTail is a tail-drop at a class's packet cap.
	DropTail = obs.DropTail
	// DropBytes is a drop at a class's byte cap.
	DropBytes = obs.DropBytes
	// DropClosed is an arrival after Close.
	DropClosed = obs.DropClosed
	// DropWrite is a fatal (non-retryable) Writer error.
	DropWrite = obs.DropWrite
	// DropRetries is a transient Writer error that outlived its retry and
	// requeue budget.
	DropRetries = obs.DropRetries
	// DropCoDel is a packet shed by the WithAQM CoDel policy.
	DropCoDel = obs.DropCoDel
	// DropRED is a packet shed by the WithAQM RED policy.
	DropRED = obs.DropRED
	// DropPanic is a packet lost in flight when the pump recovered a panic.
	DropPanic = obs.DropPanic
	// DropShed is a datagram refused by the overload controller (pressure
	// shedding, or the gateway's brownout refusal of a new flow). The cause
	// breakdown lands in Metrics.ShedReasons.
	DropShed = obs.DropShed
)

// Shed causes, as recorded in Metrics.ShedReasons under DropShed drops.
const (
	// ShedPressure is a class refused by pressure-driven load shedding.
	ShedPressure = obs.ShedPressure
	// ShedBrownout is a datagram refused by the gateway's brownout gate.
	ShedBrownout = obs.ShedBrownout
)

// Retry reasons, as recorded in Metrics.RetryReasons and on EventRetry trace
// events.
const (
	// RetryTransient is a re-attempt after a transient Writer error.
	RetryTransient = obs.RetryTransient
	// RetryRequeue is a packet re-entering the scheduler under WithRequeue.
	RetryRequeue = obs.RetryRequeue
)

// NewRingTracer returns a tracer retaining the most recent capacity events.
func NewRingTracer(capacity int) *RingTracer { return obs.NewRingTracer(capacity) }

// NewJSONLTracer returns a tracer writing one JSON object per event to w.
func NewJSONLTracer(w io.Writer) *JSONLTracer { return obs.NewJSONLTracer(w) }

// NamedTracer stamps every event passed to t with the given node name —
// useful to multiplex several servers into one stream.
func NamedTracer(node string, t Tracer) Tracer { return obs.Named(node, t) }

// Policy is a first-class scheduling policy on the PIFO substrate
// (internal/pifo): a named pair of flat/node constructors for the rank
// function, eligibility predicate, and per-flow virtual-time state that
// express a discipline. Every registered Algorithm except FIFO and
// WF2Q+fixed is a Policy underneath; PolicyByName retrieves those, and the
// *Policy helpers below parameterize the deadline/priority families.
// Select a policy with WithPolicy (everywhere) or WithNodePolicy (per
// hierarchy node).
type Policy = pifo.Factory

// PolicyHooks is the per-flow state interface a custom Policy implements:
// AddFlow, Arrive (stamp a packet with rank/eligibility/virtual times),
// Commit (account a packet entering service), and V (the policy's virtual
// clock). See internal/pifo for the optional Ticker/Floorer/Deferrer
// extensions.
type PolicyHooks = pifo.Policy

// Stamp is one PIFO scheduling decision: the rank ordering service, the
// eligibility key gating it, and the virtual start/finish pair for traces.
type Stamp = pifo.Stamp

// PolicyByName returns the registered policy factory for an algorithm name
// ("WF2Q+", "WFQ", "WF2Q", "SCFQ", "SFQ", "DRR", "SP", "EDF", "SRPT",
// "LSTF"). ok is false for names with no PIFO form (FIFO, WF2Q+fixed).
func PolicyByName(algorithm Algorithm) (Policy, bool) {
	return pifo.Lookup(string(algorithm))
}

// Policies lists the registered PIFO policy names, sorted.
func Policies() []string { return pifo.Names() }

// StrictPriorityPolicy returns strict priority with a custom priority
// function (smaller = served first); the registry's "SP" prioritizes by
// flow id.
func StrictPriorityPolicy(prio func(id int, rate float64) float64) Policy {
	return pifo.StrictPriorityWith(prio)
}

// EDFPolicy returns earliest-deadline-first with a custom relative-deadline
// function; the registry's "EDF" uses one transmission time at the flow's
// guaranteed rate (L/r_i).
func EDFPolicy(rel func(id int, rate, length float64) float64) Policy {
	return pifo.EDFWith(rel)
}

// LSTFPolicy returns least-slack-time-first with a custom slack function;
// the registry's "LSTF" uses L/r_i.
func LSTFPolicy(slack func(id int, rate, length float64) float64) Policy {
	return pifo.LSTFWith(slack)
}

// Option configures a scheduler, node, hierarchy — or, because Option also
// satisfies DataplaneOption, a data-plane — at construction.
type Option struct {
	metrics  bool
	tracer   Tracer
	hasTrace bool
	nodes    func(rate float64) NodeScheduler
	policy   *Policy
	nodePols []nodePolicy
}

type nodePolicy struct {
	name string
	pol  Policy
}

// WithMetrics enables metric collection (counts, queue depths, delays, WFI)
// from the first packet.
func WithMetrics() Option { return Option{metrics: true} }

// WithTracer streams per-packet events to t. On a hierarchy the tracer also
// receives every interior node's events, stamped with the node's topology
// name.
func WithTracer(t Tracer) Option { return Option{tracer: t, hasTrace: true} }

// WithNodes supplies a custom per-node scheduler constructor to
// NewHierarchy, e.g. to mix hand-built nodes per level. It takes precedence
// over every policy option; New, NewNode and NewDataplane ignore it.
func WithNodes(fn func(rate float64) NodeScheduler) Option {
	return Option{nodes: fn}
}

// WithPolicy selects an explicit scheduling policy, overriding the
// algorithm argument of New, NewNode, NewHierarchy or NewDataplane. On a
// hierarchy or topology-mode data-plane it becomes the default discipline
// of every interior node, overridden per node by WithNodePolicy and by
// ':policy' clauses in parsed topo specs.
func WithPolicy(p Policy) Option { return Option{policy: &p} }

// WithNodePolicy pins the policy of the named interior node of a hierarchy
// (NewHierarchy, or NewDataplane with WithTopology). Repeat for different
// nodes; the most specific selection wins (WithNodePolicy, then the
// topology's ':policy' annotations, then WithPolicy, then the algorithm).
// New and NewNode ignore it.
func WithNodePolicy(nodeName string, p Policy) Option {
	return Option{nodePols: []nodePolicy{{name: nodeName, pol: p}}}
}

func applyOptions(o obs.Observable, opts []Option) {
	for _, opt := range opts {
		if opt.metrics {
			o.EnableMetrics()
		}
		if opt.hasTrace {
			o.SetTracer(opt.tracer)
		}
	}
}

// lastPolicy returns the last WithPolicy selection, or nil.
func lastPolicy(opts []Option) *Policy {
	var p *Policy
	for _, opt := range opts {
		if opt.policy != nil {
			p = opt.policy
		}
	}
	return p
}

// dataplaneOptions translates the Option into the engine's option set; this
// is how one WithPolicy/WithMetrics/WithTracer value works for both the
// simulation constructors and NewDataplane. WithNodes has no data-plane
// form and is ignored.
func (o Option) dataplaneOptions() []dataplane.Option {
	var out []dataplane.Option
	if o.metrics {
		out = append(out, dataplane.WithMetrics())
	}
	if o.hasTrace {
		out = append(out, dataplane.WithTracer(o.tracer))
	}
	if o.policy != nil {
		out = append(out, dataplane.WithPolicy(*o.policy))
	}
	for _, np := range o.nodePols {
		out = append(out, dataplane.WithNodePolicy(np.name, np.pol))
	}
	return out
}

// Algorithms lists the registered algorithms, sorted by name.
func Algorithms() []Algorithm {
	names := sched.Algorithms()
	out := make([]Algorithm, len(names))
	for i, n := range names {
		out[i] = Algorithm(n)
	}
	return out
}

// New returns a standalone scheduler for a link of the given rate in
// bits/sec:
//
//	s, err := hpfq.New(hpfq.WF2QPlus, 10e6, hpfq.WithMetrics())
//
// WithPolicy substitutes an explicit policy for the algorithm name. Unknown
// algorithms return an error matching ErrUnknownAlgorithm.
func New(algorithm Algorithm, rate float64, opts ...Option) (Scheduler, error) {
	var (
		s   Scheduler
		err error
	)
	if p := lastPolicy(opts); p != nil {
		s, err = sched.NewPolicy(*p, rate)
	} else {
		s, err = sched.New(string(algorithm), rate)
	}
	if err != nil {
		return nil, err
	}
	applyOptions(s, opts)
	return s, nil
}

// NewNode returns a hierarchical server node with guaranteed rate in
// bits/sec (all registered algorithms except FIFO and WF2Q+fixed, which
// have no node form and return an error matching ErrNoNodeForm).
// WithPolicy substitutes an explicit policy for the algorithm name.
func NewNode(algorithm Algorithm, rate float64, opts ...Option) (NodeScheduler, error) {
	var (
		n   NodeScheduler
		err error
	)
	if p := lastPolicy(opts); p != nil {
		n, err = sched.NewPolicyNode(*p, rate)
	} else {
		n, err = sched.NewNode(string(algorithm), rate)
	}
	if err != nil {
		return nil, err
	}
	applyOptions(n, opts)
	return n, nil
}

// NewWF2QPlus returns the paper's WF²Q+ scheduler for a link of the given
// rate in bits/sec.
func NewWF2QPlus(rate float64) *core.Scheduler { return core.NewScheduler(rate) }

// NewWF2QPlusNode returns a WF²Q+ hierarchical server node with guaranteed
// rate in bits/sec.
func NewWF2QPlusNode(rate float64) *core.Node { return core.NewNode(rate) }

// Topology building: a link-sharing tree of service shares.
type Topology = topo.Node

// Leaf returns a session leaf with a share relative to its siblings.
func Leaf(name string, share float64, session int) *Topology {
	return topo.Leaf(name, share, session)
}

// Interior returns a link-sharing class node.
func Interior(name string, share float64, children ...*Topology) *Topology {
	return topo.Interior(name, share, children...)
}

// ParseTopology parses a link-sharing tree spec:
//
//	node := name '=' share ['^' ceil] (':' session [':' policy] | [':' policy] '(' node {',' node} ')')
//
// e.g. "root=1(video=3(hd=2:0,sd=1:1),bulk=1:2)", or with per-node
// policies "root=1:WF2Q+(video=3:SP(hd=2:0,sd=1:1),bulk=1:2)". Shares are
// relative to siblings; the optional policy clause names the scheduling
// discipline of that node's server. The optional '^ceil' clause caps the
// node at an absolute rate in bits/sec ("bulk=1^5e6:2") and enables
// HTB-style borrowing on a data-plane built from the spec. The cmd/hpfqgw
// and cmd/hpfqsim -topo flags speak exactly this grammar.
func ParseTopology(spec string) (*Topology, error) { return topo.Parse(spec) }

// Hierarchy is an H-PFQ server (the paper's §4 construction).
type Hierarchy = hier.Tree

// NewHierarchy builds an H-PFQ server over the topology using the named
// one-level algorithm at every interior node — H-WF²Q+ is
//
//	tree, err := hpfq.NewHierarchy(top, 45e6, hpfq.WF2QPlus)
//
// WithMetrics and WithTracer cover the whole tree (per-session delays and
// WFI at the root collector, reference-time counters at every interior
// node; see Hierarchy.NodeSnapshots). Per-node disciplines resolve most
// specific first: WithNodes (a custom constructor) wins outright, then
// WithNodePolicy by node name, then ':policy' annotations in the topology,
// then WithPolicy, then the algorithm argument. Malformed topologies return
// an error matching ErrBadTopology.
func NewHierarchy(top *Topology, linkRate float64, algorithm Algorithm, opts ...Option) (*Hierarchy, error) {
	var nodes func(rate float64) NodeScheduler
	perNode := make(map[string]Policy)
	for _, opt := range opts {
		if opt.nodes != nil {
			nodes = opt.nodes
		}
		for _, np := range opt.nodePols {
			perNode[np.name] = np.pol
		}
	}
	var (
		tree *Hierarchy
		err  error
	)
	if nodes != nil {
		tree, err = hier.Build(top, linkRate, string(algorithm), nodes)
	} else {
		tree, err = hier.BuildSpec(top, linkRate, string(algorithm),
			hier.Resolver(string(algorithm), lastPolicy(opts), perNode))
	}
	if err != nil {
		return nil, err
	}
	applyOptions(tree, opts)
	return tree, nil
}

// Simulation substrate.
type (
	// Sim is the discrete-event simulation kernel; Sim.Metrics reports its
	// event counters as a SimMetrics.
	Sim = des.Sim
	// Event is a scheduled simulator callback.
	Event = des.Event
	// Link is a fixed-rate output port draining a scheduler; its embedded
	// collector measures full per-packet sojourns and buffer-limit drops.
	Link = netsim.Link
	// Queue is the server contract shared by flat schedulers and
	// hierarchies.
	Queue = netsim.Queue
)

// NewSim returns a simulator with the clock at zero.
func NewSim() *Sim { return des.New() }

// NewLink returns a link of the given rate in bits/sec draining q.
func NewLink(sim *Sim, rate float64, q Queue) *Link { return netsim.NewLink(sim, rate, q) }

// Fluid reference systems.
type (
	// GPS is the one-level fluid server of §2.1.
	GPS = fluid.GPS
	// HGPS is the hierarchical fluid server of §2.2.
	HGPS = fluid.HGPS
	// GPSClock is the exact GPS virtual time function (eq. 4–5).
	GPSClock = fluid.Clock
)

// NewGPS returns a GPS fluid server of the given rate.
func NewGPS(rate float64) *GPS { return fluid.NewGPS(rate) }

// NewHGPS returns an H-GPS fluid server over a topology.
func NewHGPS(top *Topology, rate float64) (*HGPS, error) { return fluid.NewHGPS(top, rate) }

// NewGPSClock returns an exact GPS virtual clock.
func NewGPSClock(rate float64) *GPSClock { return fluid.NewClock(rate) }

// IdealShares computes the instantaneous H-GPS bandwidth of every active
// session (eq. 8–9); see Fig. 9(b).
func IdealShares(top *Topology, linkRate float64, active map[int]bool) map[int]float64 {
	return fluid.IdealShares(top, linkRate, active)
}

// Traffic sources.
type (
	// CBR is a constant bit rate source.
	CBR = traffic.CBR
	// OnOff is a deterministic on/off source.
	OnOff = traffic.OnOff
	// Poisson is a Poisson packet source.
	Poisson = traffic.Poisson
	// Train emits periodic back-to-back packet trains.
	Train = traffic.Train
	// Greedy keeps a session continuously backlogged.
	Greedy = traffic.Greedy
	// Scheduled is a CBR source active during listed intervals.
	Scheduled = traffic.Scheduled
	// Interval is a half-open active period for Scheduled sources.
	Interval = traffic.Interval
	// LeakyBucket is a (σ, ρ) regulator.
	LeakyBucket = traffic.LeakyBucket
	// Emit delivers generated packets to the system under test.
	Emit = traffic.Emit
)

// ToLink returns an Emit that submits packets to a link.
func ToLink(l *Link) Emit { return traffic.ToLink(l) }

// NewLeakyBucket returns a (σ, ρ) regulator releasing into out.
func NewLeakyBucket(sim *Sim, sigma, rho float64, out Emit) *LeakyBucket {
	return traffic.NewLeakyBucket(sim, sigma, rho, out)
}

// TCPSource is a compact TCP Reno sender/receiver pair (§5.2 workloads).
type TCPSource = tcp.Source

// Shaper paces real workloads through WF²Q+ in wall-clock time — a
// dummynet-style egress rate limiter with per-class guarantees. See
// internal/shaper.
type Shaper = shaper.Shaper

// ShaperOption configures a Shaper at construction.
type ShaperOption = shaper.Option

// ShaperMetrics enables per-class metric collection on the shaper; read the
// counters with Shaper.Snapshot.
func ShaperMetrics() ShaperOption { return shaper.WithMetrics() }

// ShaperTracer streams the shaper's per-item scheduling events to t. The
// tracer runs under the shaper's lock and must not call back into it.
func ShaperTracer(t Tracer) ShaperOption { return shaper.WithTracer(t) }

// NewShaper returns a wall-clock shaper for a virtual link of the given
// rate in cost units (e.g. bits) per second.
func NewShaper(rate float64, opts ...ShaperOption) *Shaper { return shaper.New(rate, opts...) }

// NewTCPSource returns a TCP source for a session over a bottleneck link,
// with fixed non-bottleneck RTT component delay, starting at start.
func NewTCPSource(sim *Sim, link *Link, session int, segBits, delay, start float64) *TCPSource {
	return tcp.New(sim, link, session, segBits, delay, start)
}

// Dataplane is a concurrent UDP egress engine: datagrams in from any number
// of goroutines, WF²Q+-ordered and rate-paced datagrams out through a single
// batching pump. See internal/dataplane and cmd/hpfqgw.
type Dataplane = dataplane.Dataplane

// DataplaneOption configures a Dataplane at construction. The simulation
// Option type satisfies it too, so WithMetrics, WithTracer, WithPolicy and
// WithNodePolicy work unchanged in NewDataplane.
type DataplaneOption interface {
	dataplaneOptions() []dataplane.Option
}

// dpOptions is the concrete DataplaneOption behind the With* wrappers.
type dpOptions []dataplane.Option

func (d dpOptions) dataplaneOptions() []dataplane.Option { return d }

// Datagram I/O contracts: one datagram per call, Conn-agnostic. Connected
// *net.UDPConn values adapt via PacketReaderFrom / PacketWriterTo; the
// in-memory PacketPipe stands in for a socket in tests.
type (
	// PacketReader is the datagram ingress contract.
	PacketReader = dataplane.Reader
	// PacketWriter is the datagram egress contract.
	PacketWriter = dataplane.Writer
	// PacketCtxWriter is the optional PacketWriter extension for per-datagram
	// routing: when the Writer passed to Dataplane.Start also implements it,
	// datagrams staged with Dataplane.IngestCtx are delivered through
	// WritePacketCtx with their opaque context.
	PacketCtxWriter = dataplane.CtxWriter
	// PacketPipe is an in-memory datagram conduit with message boundaries.
	// It honors the buffer-ownership rules (pool-backed copies, no retained
	// slices) and implements both batch contracts.
	PacketPipe = dataplane.Pipe
)

// Batch datagram I/O: the recvmmsg/sendmmsg-shaped contracts the data-plane
// pump speaks natively. Writers passed to Dataplane.Start that implement
// PacketBatchWriter receive each token-bucket release in WithBatchSize
// chunks; per-packet implementations are adapted transparently.
type (
	// PacketDatagram is one scheduled payload handed to a PacketBatchWriter:
	// raw bytes plus the opaque IngestCtx routing context. Writers must not
	// retain it past the WriteBatch call.
	PacketDatagram = dataplane.Datagram
	// PacketBatchWriter is the batch egress contract. WriteBatch returns how
	// many datagrams were delivered; a non-nil error applies to the first
	// unwritten one and the engine re-offers the suffix.
	PacketBatchWriter = dataplane.BatchWriter
	// PacketBatchReader is the batch ingress contract: fill up to len(bufs)
	// datagrams, reslicing each filled bufs[i] to its length.
	PacketBatchReader = dataplane.BatchReader
	// PayloadBatchWriter is the context-free batch egress shape (WriteBatch
	// over raw payloads), implemented by byte-level wrappers like
	// internal/faultconn.
	PayloadBatchWriter = dataplane.PayloadBatchWriter
	// BufferPool recycles fixed-size datagram payload buffers through the
	// data-plane (WithBufferPool) so the hot path runs allocation-free.
	BufferPool = dataplane.BufferPool
	// BufferPoolStats is a point-in-time snapshot of a BufferPool's traffic.
	BufferPoolStats = dataplane.PoolStats
)

// AsPacketBatchWriter adapts any per-packet PacketWriter (or
// PacketCtxWriter, or PayloadBatchWriter) to the PacketBatchWriter
// contract. The returned adapter is not safe for concurrent WriteBatch
// calls.
func AsPacketBatchWriter(w PacketWriter) PacketBatchWriter { return dataplane.AsBatchWriter(w) }

// AsPacketBatchReader adapts any per-packet PacketReader to the
// PacketBatchReader contract (one datagram per ReadBatch call).
func AsPacketBatchReader(r PacketReader) PacketBatchReader { return dataplane.AsBatchReader(r) }

// NewDataplane returns an egress engine pacing at rate bits/sec under the
// named algorithm:
//
//	dp, err := hpfq.NewDataplane(hpfq.WF2QPlus, 50e6,
//	        hpfq.WithTopology(top), hpfq.WithQueueCap(256))
//
// Flat mode (no WithTopology) registers classes with Dataplane.AddClass;
// WithTopology builds an H-PFQ tree whose leaves become the classes. Start
// the pump with Start, feed it with Ingest or RunReader, stop with Close.
func NewDataplane(algorithm Algorithm, rate float64, opts ...DataplaneOption) (*Dataplane, error) {
	var all []dataplane.Option
	for _, o := range opts {
		all = append(all, o.dataplaneOptions()...)
	}
	return dataplane.New(string(algorithm), rate, all...)
}

// WithTopology schedules the data-plane's classes hierarchically over a
// link-sharing tree (the leaves become the classes). Per-node disciplines
// resolve as in NewHierarchy: WithNodePolicy, then the topology's ':policy'
// annotations, then WithPolicy, then the algorithm argument.
func WithTopology(top *Topology) DataplaneOption {
	return dpOptions{dataplane.WithTopology(top)}
}

// WithQueueCap bounds every class's staging queue to n datagrams; arrivals
// beyond it are tail-dropped and recorded in the metrics. 0 = unlimited.
func WithQueueCap(n int) DataplaneOption { return dpOptions{dataplane.WithQueueCap(n)} }

// WithByteCap bounds every class's staged bytes to n; arrivals that would
// exceed it are dropped and recorded. 0 = unlimited.
func WithByteCap(n int) DataplaneOption { return dpOptions{dataplane.WithByteCap(n)} }

// WithBurst sets the data-plane's token-bucket depth in bits (default: 5 ms
// of the configured rate), trading batching efficiency against short-term
// burstiness.
func WithBurst(bits float64) DataplaneOption { return dpOptions{dataplane.WithBurst(bits)} }

// WithDataplaneMetrics enables per-class metric collection on the
// data-plane's scheduler; read the counters (including the per-reason drop
// breakdown) with Dataplane.Snapshot. Plain WithMetrics works too.
func WithDataplaneMetrics() DataplaneOption { return dpOptions{dataplane.WithMetrics()} }

// WithDataplaneTracer streams the data-plane's per-datagram scheduling
// events to t. The tracer runs under the engine's lock and must not call
// back into it. Plain WithTracer works too.
func WithDataplaneTracer(t Tracer) DataplaneOption { return dpOptions{dataplane.WithTracer(t)} }

// WithWriteRetry tunes the data-plane pump's reaction to transient Writer
// errors: up to limit re-attempts per packet, sleeping backoff before the
// first and doubling up to cap between the rest. limit 0 disables retries.
func WithWriteRetry(limit int, backoff, cap time.Duration) DataplaneOption {
	return dpOptions{dataplane.WithWriteRetry(limit, backoff, cap)}
}

// WithRequeue lets a packet whose retry budget ran out rejoin the data-plane
// scheduler instead of being dropped, at most n times per packet.
func WithRequeue(n int) DataplaneOption { return dpOptions{dataplane.WithRequeue(n)} }

// Data-plane retry defaults for transient Writer errors.
const (
	DefaultRetryLimit   = dataplane.DefaultRetryLimit
	DefaultRetryBackoff = dataplane.DefaultRetryBackoff
	DefaultRetryCap     = dataplane.DefaultRetryCap
)

// WithAQM enables a per-class drop policy on the data-plane as graceful
// degradation under overload. kind selects it: AQMCoDel sheds packets whose
// staging sojourn stays above target for a full interval (reason DropCoDel,
// defaults 5 ms / 100 ms); AQMRED ramps drop probability as the sojourn
// EWMA crosses [target, interval] thresholds (reason DropRED, defaults
// 5 ms / 15 ms). An empty kind means CoDel; non-positive durations select
// the kind's defaults; an unknown kind fails construction.
func WithAQM(kind string, target, interval time.Duration) DataplaneOption {
	return dpOptions{dataplane.WithAQM(kind, target, interval)}
}

// AQM kinds for WithAQM.
const (
	AQMCoDel = dataplane.AQMCoDel
	AQMRED   = dataplane.AQMRED
)

// --------------------------------------------------------------------------
// Loss-resilient egress: FEC repair classes (internal/fec).

// FECSpec is an erasure-code geometry: Scheme (FECSchemeXOR or FECSchemeRS),
// K source datagrams per block, R repair datagrams. Parse the "rs-8-2" /
// "xor-8" string form with ParseFECSpec.
type FECSpec = fec.Spec

// FECConfig tunes one WithFEC-protected class: the repair class id and
// rate/share, the partial-block flush age, and the adaptive-redundancy
// controller. The zero value is a sensible default everywhere.
type FECConfig = dataplane.FECConfig

// FECControllerConfig bounds the adaptive (k,r) controller enabled by
// FECConfig.Adapt: EWMA gain, loss headroom, and geometry bounds.
type FECControllerConfig = fec.ControllerConfig

// FECDecoder is the receive side: feed it every arriving datagram with Push;
// native datagrams pass through, FEC sources are unwrapped, and each block's
// erased sources are reconstructed as soon as enough symbols arrive.
type FECDecoder = fec.Decoder

// FECDecoderStats is the decoder's counter snapshot (FECDecoder.Stats).
type FECDecoderStats = fec.DecoderStats

// FEC scheme names for FECSpec.
const (
	// FECSchemeXOR is single-parity XOR: R is fixed at 1; repairs any one
	// erasure per block at 1/(K+1) overhead.
	FECSchemeXOR = fec.SchemeXOR
	// FECSchemeRS is systematic Reed-Solomon over GF(2^8): any K of the K+R
	// datagrams reconstruct the block.
	FECSchemeRS = fec.SchemeRS
)

// DefaultRepairClassOffset derives a repair class id when FECConfig leaves
// RepairClass zero: protected class c's repairs ride class c+1000.
const DefaultRepairClassOffset = dataplane.DefaultRepairClassOffset

// DefaultFECBlockAge bounds how long a partial FEC block waits for its K-th
// source before its repairs flush anyway.
const DefaultFECBlockAge = dataplane.DefaultFECBlockAge

// ParseFECSpec parses an erasure-code geometry string: "rs-8-2" (RS, K=8,
// R=2), "xor-8" (XOR parity over 8 sources), colon separators accepted.
func ParseFECSpec(s string) (FECSpec, error) { return fec.ParseSpec(s) }

// NewFECDecoder returns a receive-side decoder. One decoder serves any
// number of protected classes — blocks are keyed by the stream id in each
// header.
func NewFECDecoder() *FECDecoder { return fec.NewDecoder() }

// IsFECDatagram reports whether b starts with the FEC header magic — how a
// receiver distinguishes protected traffic from native datagrams.
func IsFECDatagram(b []byte) bool { return fec.IsFEC(b) }

// WithFEC protects a data-plane class with an erasure code: every source
// datagram is FEC-stamped on ingest, and each block's repair datagrams are
// emitted on a sibling repair class scheduled by the same WF²Q+/H-PFQ
// machinery as everything else, so repair bandwidth competes fairly and can
// never starve the siblings. The receive side decodes with FECDecoder and
// reports loss back through Dataplane.FECFeedback; FECConfig.Adapt then
// retunes the geometry to track the observed loss. The '!fec' topology
// clause (e.g. "a=2!rs-8-2:0") is the spec-side spelling.
func WithFEC(class int, spec FECSpec, cfg FECConfig) DataplaneOption {
	return dpOptions{dataplane.WithFEC(class, spec, cfg)}
}

// FECStatus is one protected class's row in DataplaneStatus.FEC.
type FECStatus = dataplane.FECStatus

// WithBufferPool hands the data-plane a payload buffer pool (nil selects
// the process-wide SharedBufferPool): once Ingest succeeds on a buffer
// obtained from the pool the engine owns it and returns it to the pool when
// the datagram is written or dropped, making the
// ingress → staging → egress → release cycle allocation-free at steady
// state. Without this option the engine never recycles payload buffers.
func WithBufferPool(p *BufferPool) DataplaneOption { return dpOptions{dataplane.WithBufferPool(p)} }

// WithBatchSize caps how many datagrams the data-plane pump hands the
// writer per WriteBatch call (minimum 1; default DefaultBatchSize).
func WithBatchSize(n int) DataplaneOption { return dpOptions{dataplane.WithBatchSize(n)} }

// Batch and buffer defaults.
const (
	// DefaultBatchSize is the default WriteBatch chunk ceiling.
	DefaultBatchSize = dataplane.DefaultBatchSize
	// MaxDatagramSize is the default BufferPool buffer length — large enough
	// for any UDP datagram.
	MaxDatagramSize = dataplane.MaxDatagramSize
)

// NewBufferPool returns a pool of fixed-size payload buffers (non-positive
// size selects MaxDatagramSize).
func NewBufferPool(size int) *BufferPool { return dataplane.NewBufferPool(size) }

// SharedBufferPool returns the process-wide pool of MaxDatagramSize
// buffers; components exchanging datagrams through the same pool recycle
// buffers across stage boundaries.
func SharedBufferPool() *BufferPool { return dataplane.SharedBufferPool() }

// IsTransientIOError reports whether an I/O error classifies as transient —
// the exact predicate the data-plane pump uses for its retry-or-drop
// decision (self-classifying Transient() errors, net.Error timeouts,
// EAGAIN-style errnos, short writes). Ingress loops use it to survive
// injected or real transient read errors without tearing down.
func IsTransientIOError(err error) bool { return dataplane.IsTransient(err) }

// NewPacketPipe returns an in-memory datagram conduit buffering up to
// capacity in-flight datagrams, borrowing internal buffers from the shared
// pool.
func NewPacketPipe(capacity int) *PacketPipe { return dataplane.NewPipe(capacity) }

// NewPacketPipePool is NewPacketPipe with an explicit BufferPool (nil
// selects the shared pool), so tests can observe recycling on their own
// pool.
func NewPacketPipePool(capacity int, pool *BufferPool) *PacketPipe {
	return dataplane.NewPipePool(capacity, pool)
}

// PacketReaderFrom adapts an io.Reader with datagram semantics (e.g. a
// connected *net.UDPConn) to the PacketReader contract.
func PacketReaderFrom(r io.Reader) PacketReader { return dataplane.ReaderFrom(r) }

// PacketWriterTo adapts an io.Writer with datagram semantics (e.g. a
// connected *net.UDPConn) to the PacketWriter contract.
func PacketWriterTo(w io.Writer) PacketWriter { return dataplane.WriterTo(w) }

// --------------------------------------------------------------------------
// Control plane: live introspection and hitless reconfiguration.

// WithBorrowing enables HTB-style rate/ceil borrowing on the data-plane:
// every class (and, over a topology, every named node) gets a token bucket
// at its guaranteed rate, and a class whose bucket is empty may borrow idle
// tokens from its ancestors, bounded by any ceilings on its path. Ceilings
// (WithClassCeil, WithNodeCeil, '^ceil' topology clauses, or the live
// Dataplane.SetCeil/SetNodeCeil) enable borrowing implicitly.
func WithBorrowing() DataplaneOption { return dpOptions{dataplane.WithBorrowing()} }

// WithClassCeil caps a data-plane class at an absolute ceiling in bits/sec
// (HTB ceil) and enables borrowing.
func WithClassCeil(class int, ceil float64) DataplaneOption {
	return dpOptions{dataplane.WithClassCeil(class, ceil)}
}

// WithNodeCeil caps a named interior topology node at an absolute ceiling
// in bits/sec (HTB ceil), bounding its whole subtree, and enables
// borrowing. Ignored in flat mode.
func WithNodeCeil(name string, ceil float64) DataplaneOption {
	return dpOptions{dataplane.WithNodeCeil(name, ceil)}
}

// DataplaneStatus is the control plane's one-call view of a running engine:
// configuration, lifecycle, the scheduler snapshot, the live topology, and
// per-class staging state. Read it with Dataplane.Status; the admin server
// serves it on /api/status.
type DataplaneStatus = dataplane.Status

// ClassStatus is one class's row in DataplaneStatus.
type ClassStatus = dataplane.ClassStatus

// TreeNodeInfo describes one live node of a data-plane topology
// (DataplaneStatus.Nodes, Hierarchy.Nodes).
type TreeNodeInfo = hier.NodeInfo

// AdminServer is the gateway's HTTP control plane (internal/ctl): live
// introspection (/healthz, /status, /api/status, /api/nodes, /api/flows,
// /api/policies) and hitless mutations (/api/class/*, /api/node/*) over a
// running Dataplane. Construct with NewAdminServer, then Start/Close, or
// mount Handler under an existing server.
type AdminServer = ctl.Server

// AdminOption configures an AdminServer.
type AdminOption = ctl.Option

// FlowInfo is one row of a gateway's client flow table, published on the
// admin server's /api/flows endpoint via WithAdminFlows.
type FlowInfo = ctl.FlowInfo

// FlowSource supplies the current flow table to the admin server; it must
// be safe for concurrent use.
type FlowSource = ctl.FlowSource

// NewAdminServer returns an admin HTTP server over the data-plane.
func NewAdminServer(dp *Dataplane, opts ...AdminOption) *AdminServer {
	return ctl.New(dp, opts...)
}

// WithAdminFlows publishes the flow table fs on the admin server's
// /api/flows endpoint.
func WithAdminFlows(fs FlowSource) AdminOption { return ctl.WithFlows(fs) }

// --------------------------------------------------------------------------
// Overload control: pressure tracking, load shedding, brownout, watchdog
// (internal/overload, wired through the data-plane).

// HealthState is the data-plane's overload health verdict, advancing
// Healthy → Degraded → Overloaded → Wedged as smoothed pressure crosses the
// OverloadConfig thresholds (and back down with hysteresis). Read it cheaply
// with Dataplane.HealthState, or in full with Dataplane.Health.
type HealthState = overload.State

// Health states, in escalation order.
const (
	// Healthy: no overload response active.
	Healthy = overload.Healthy
	// Degraded: priority-aware shedding — the lowest-share classes (or the
	// WithShedOrder prefix) refuse intake with ErrShedding.
	Degraded = overload.Degraded
	// Overloaded: brownout — FEC encoding and tracing switch off, the
	// gateway refuses new flows, and /healthz answers 503.
	Overloaded = overload.Overloaded
	// Wedged: the pump watchdog's circuit breaker tripped (stalled writer
	// or restart storm); writes fail fast until progress resumes.
	Wedged = overload.Wedged
)

// OverloadConfig tunes the pressure tracker behind WithOverload: sampling
// cadence, EWMA smoothing, the enter/exit hysteresis bands of each state,
// and the watchdog/restart circuit breakers. Zero fields select the
// DefaultOverloadConfig values.
type OverloadConfig = overload.Config

// OverloadSignals is one raw pressure sample: staging occupancy against the
// caps, buffer-pool miss rate, write-retry fraction, pump restart rate, and
// heartbeat age (HealthStatus.Signals).
type OverloadSignals = overload.Signals

// DefaultOverloadConfig returns the tracker defaults documented on
// OverloadConfig.
func DefaultOverloadConfig() OverloadConfig { return overload.DefaultConfig() }

// HealthStatus is the detailed health report behind Dataplane.Health,
// /healthz, and the admin server's GET /api/health.
type HealthStatus = dataplane.HealthStatus

// ErrShedding reports an Ingest refused because the overload controller is
// currently shedding the class; the datagram was dropped and recorded with
// reason DropShed.
var ErrShedding = dataplane.ErrShedding

// WithOverload enables the data-plane's pressure-and-health subsystem: a
// monitor goroutine samples staging occupancy, pool pressure, retry/restart
// rates and the pump heartbeat, smooths them into a pressure score, and
// walks the Healthy → Degraded → Overloaded → Wedged state machine with
// hysteresis. Degraded sheds the lowest-share classes first; Overloaded
// adds brownout (FEC and tracing off, 503 on /healthz).
func WithOverload(cfg OverloadConfig) DataplaneOption {
	return dpOptions{dataplane.WithOverload(cfg)}
}

// WithShedOrder fixes the overload shed order explicitly: listed classes
// shed front-first as pressure grows, unlisted classes are never shed.
// Without it the order derives from the hierarchy — repair classes first,
// then ascending guaranteed rate, and the top-share class is never shed.
func WithShedOrder(ids ...int) DataplaneOption {
	return dpOptions{dataplane.WithShedOrder(ids...)}
}

// WithWatchdog arms the pump watchdog: a heartbeat older than timeout while
// work is queued counts as a stall, interrupts the blocked write with a
// write deadline (any Writer with SetWriteDeadline), and after repeated
// stalls trips the circuit breaker to Wedged instead of hot-looping.
// Implies WithOverload with defaults when none was given.
func WithWatchdog(timeout time.Duration) DataplaneOption {
	return dpOptions{dataplane.WithWatchdog(timeout)}
}

// --------------------------------------------------------------------------
// Sharded multi-core data plane (internal/shard): N independent engines
// behind one front, flows partitioned by consistent hash, the shared link
// kept work-conserving by a per-tick rate splitter.

// ShardedDataplane runs N independent Dataplane engines — one per CPU —
// behind a single control surface. Each shard owns a full scheduler tree,
// token bucket, staging queues and pump over a 1/N slice of the link;
// packets never cross a shard boundary, so the hot path takes no
// cross-shard locks. A rate splitter lends idle shards' pacing budget to
// backlogged ones each tick (deficit-carrying), keeping the aggregate link
// work-conserving. Route traffic with IngestKey/IngestKeyCtx (software
// consistent hash) or pin whole sockets to shards via Shard(i) in
// SO_REUSEPORT deployments. Mutations (AddClass, SetRate, …) fan out to
// every shard atomically with respect to each pump.
type ShardedDataplane = shard.Sharded

// ShardOption configures a ShardedDataplane front (redistribution tick,
// test clock).
type ShardOption = shard.Option

// WithShardSplitTick sets the rate splitter's redistribution cadence
// (default shard.DefaultSplitTick, 5 ms).
func WithShardSplitTick(d time.Duration) ShardOption { return shard.WithSplitTick(d) }

// NewShardedDataplane builds shards independent engines under the named
// algorithm, each pacing at rate/shards with guarantees, ceilings and burst
// scaled to its slice, behind one ShardedDataplane front. shards == 1
// degenerates to a bare engine behind the front (no splitter, no scaling).
// The option set is applied identically to every shard — required for the
// fan-out mutation contract.
func NewShardedDataplane(algorithm Algorithm, rate float64, shards int, opts ...DataplaneOption) (*ShardedDataplane, error) {
	return NewShardedDataplaneOpts(algorithm, rate, shards, nil, opts...)
}

// NewShardedDataplaneOpts is NewShardedDataplane with front-level options
// (ShardOption) alongside the per-shard engine options.
func NewShardedDataplaneOpts(algorithm Algorithm, rate float64, shards int, shardOpts []ShardOption, opts ...DataplaneOption) (*ShardedDataplane, error) {
	var all []dataplane.Option
	for _, o := range opts {
		all = append(all, o.dataplaneOptions()...)
	}
	return shard.New(string(algorithm), rate, shards, all, shardOpts...)
}

// NewShardedAdminServer returns an admin HTTP server over a sharded front.
// Reads aggregate across shards (plus per-shard drill-down on /api/shards);
// mutations fan out to every shard.
func NewShardedAdminServer(sdp *ShardedDataplane, opts ...AdminOption) *AdminServer {
	return ctl.New(sdp, opts...)
}

// FlowKey hashes arbitrary flow-identifying bytes into the 64-bit key
// ShardedDataplane.IngestKey partitions on (FNV-1a, allocation-free).
func FlowKey(b []byte) uint64 { return shard.Key(b) }

// FlowKeyAddr hashes an IP/port endpoint into a flow key without
// allocating — the per-datagram path of a single-socket gateway.
func FlowKeyAddr(ip []byte, port int) uint64 { return shard.KeyAddr(ip, port) }
