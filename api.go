package hpfq

import (
	"hpfq/internal/core"
	"hpfq/internal/des"
	"hpfq/internal/fluid"
	"hpfq/internal/hier"
	"hpfq/internal/netsim"
	"hpfq/internal/packet"
	"hpfq/internal/sched"
	"hpfq/internal/shaper"
	"hpfq/internal/tcp"
	"hpfq/internal/topo"
	"hpfq/internal/traffic"
)

// Algorithm names accepted by New and NewHierarchy.
const (
	WF2QPlus = "WF2Q+" // the paper's contribution (§3.4)
	WFQ      = "WFQ"   // weighted fair queueing / PGPS
	WF2Q     = "WF2Q"  // worst-case fair WFQ (exact GPS clock)
	SCFQ     = "SCFQ"  // self-clocked fair queueing
	SFQ      = "SFQ"   // start-time fair queueing
	DRR      = "DRR"   // deficit round robin
	FIFO     = "FIFO"  // no isolation (flat only)
)

// Bits8KB is the paper's 8 KB packet size in bits.
const Bits8KB = packet.Bits8KB

// Packet is the unit of service; see internal/packet.
type Packet = packet.Packet

// NewPacket returns a packet for a session with a length in bits.
func NewPacket(session int, lengthBits float64) *Packet {
	return packet.New(session, lengthBits)
}

// Scheduler is a standalone packet fair queueing server.
type Scheduler = sched.Scheduler

// NodeScheduler is a PFQ server node usable inside a hierarchy.
type NodeScheduler = sched.NodeScheduler

// Algorithms lists the registered algorithm names.
func Algorithms() []string { return sched.Algorithms() }

// New returns a standalone scheduler by algorithm name for a link of the
// given rate in bits/sec.
func New(algorithm string, rate float64) (Scheduler, error) {
	return sched.New(algorithm, rate)
}

// NewWF2QPlus returns the paper's WF²Q+ scheduler for a link of the given
// rate in bits/sec.
func NewWF2QPlus(rate float64) *core.Scheduler { return core.NewScheduler(rate) }

// NewWF2QPlusNode returns a WF²Q+ hierarchical server node with guaranteed
// rate in bits/sec.
func NewWF2QPlusNode(rate float64) *core.Node { return core.NewNode(rate) }

// NewNodeByName returns a hierarchical server node by algorithm name (all
// registered algorithms except FIFO, which has no node form).
func NewNodeByName(algorithm string, rate float64) (NodeScheduler, error) {
	return sched.NewNode(algorithm, rate)
}

// Topology building: a link-sharing tree of service shares.
type Topology = topo.Node

// Leaf returns a session leaf with a share relative to its siblings.
func Leaf(name string, share float64, session int) *Topology {
	return topo.Leaf(name, share, session)
}

// Interior returns a link-sharing class node.
func Interior(name string, share float64, children ...*Topology) *Topology {
	return topo.Interior(name, share, children...)
}

// Hierarchy is an H-PFQ server (the paper's §4 construction).
type Hierarchy = hier.Tree

// NewHierarchy builds an H-PFQ server over the topology using the named
// one-level algorithm at every interior node. H-WF²Q+ is
// NewHierarchy(top, rate, hpfq.WF2QPlus).
func NewHierarchy(top *Topology, linkRate float64, algorithm string) (*Hierarchy, error) {
	return hier.New(top, linkRate, algorithm)
}

// NewHierarchyWith builds an H-PFQ server with a caller-supplied node
// constructor, e.g. to mix disciplines per level.
func NewHierarchyWith(top *Topology, linkRate float64, algorithm string, newNode func(rate float64) NodeScheduler) (*Hierarchy, error) {
	return hier.Build(top, linkRate, algorithm, newNode)
}

// Simulation substrate.
type (
	// Sim is the discrete-event simulation kernel.
	Sim = des.Sim
	// Event is a scheduled simulator callback.
	Event = des.Event
	// Link is a fixed-rate output port draining a scheduler.
	Link = netsim.Link
	// Queue is the server contract shared by flat schedulers and
	// hierarchies.
	Queue = netsim.Queue
)

// NewSim returns a simulator with the clock at zero.
func NewSim() *Sim { return des.New() }

// NewLink returns a link of the given rate in bits/sec draining q.
func NewLink(sim *Sim, rate float64, q Queue) *Link { return netsim.NewLink(sim, rate, q) }

// Fluid reference systems.
type (
	// GPS is the one-level fluid server of §2.1.
	GPS = fluid.GPS
	// HGPS is the hierarchical fluid server of §2.2.
	HGPS = fluid.HGPS
	// GPSClock is the exact GPS virtual time function (eq. 4–5).
	GPSClock = fluid.Clock
)

// NewGPS returns a GPS fluid server of the given rate.
func NewGPS(rate float64) *GPS { return fluid.NewGPS(rate) }

// NewHGPS returns an H-GPS fluid server over a topology.
func NewHGPS(top *Topology, rate float64) (*HGPS, error) { return fluid.NewHGPS(top, rate) }

// NewGPSClock returns an exact GPS virtual clock.
func NewGPSClock(rate float64) *GPSClock { return fluid.NewClock(rate) }

// IdealShares computes the instantaneous H-GPS bandwidth of every active
// session (eq. 8–9); see Fig. 9(b).
func IdealShares(top *Topology, linkRate float64, active map[int]bool) map[int]float64 {
	return fluid.IdealShares(top, linkRate, active)
}

// Traffic sources.
type (
	// CBR is a constant bit rate source.
	CBR = traffic.CBR
	// OnOff is a deterministic on/off source.
	OnOff = traffic.OnOff
	// Poisson is a Poisson packet source.
	Poisson = traffic.Poisson
	// Train emits periodic back-to-back packet trains.
	Train = traffic.Train
	// Greedy keeps a session continuously backlogged.
	Greedy = traffic.Greedy
	// Scheduled is a CBR source active during listed intervals.
	Scheduled = traffic.Scheduled
	// Interval is a half-open active period for Scheduled sources.
	Interval = traffic.Interval
	// LeakyBucket is a (σ, ρ) regulator.
	LeakyBucket = traffic.LeakyBucket
	// Emit delivers generated packets to the system under test.
	Emit = traffic.Emit
)

// ToLink returns an Emit that submits packets to a link.
func ToLink(l *Link) Emit { return traffic.ToLink(l) }

// NewLeakyBucket returns a (σ, ρ) regulator releasing into out.
func NewLeakyBucket(sim *Sim, sigma, rho float64, out Emit) *LeakyBucket {
	return traffic.NewLeakyBucket(sim, sigma, rho, out)
}

// TCPSource is a compact TCP Reno sender/receiver pair (§5.2 workloads).
type TCPSource = tcp.Source

// Shaper paces real workloads through WF²Q+ in wall-clock time — a
// dummynet-style egress rate limiter with per-class guarantees. See
// internal/shaper.
type Shaper = shaper.Shaper

// NewShaper returns a wall-clock shaper for a virtual link of the given
// rate in cost units (e.g. bits) per second.
func NewShaper(rate float64) *Shaper { return shaper.New(rate) }

// NewTCPSource returns a TCP source for a session over a bottleneck link,
// with fixed non-bottleneck RTT component delay, starting at start.
func NewTCPSource(sim *Sim, link *Link, session int, segBits, delay, start float64) *TCPSource {
	return tcp.New(sim, link, session, segBits, delay, start)
}
