// Tcpfairness shows why fair queueing matters to adaptive transport: two
// TCP Reno connections share a 10 Mbps bottleneck with an unresponsive
// 8 Mbps UDP blast. Under FIFO the UDP flood takes almost everything and
// the TCPs collapse; under WF²Q+ each session is held to its guaranteed
// share and the TCPs ride theirs — the mechanism behind the paper's §5.2
// link-sharing experiments.
package main

import (
	"fmt"

	"hpfq"
)

const (
	linkRate = 10e6
	segBits  = 1500 * 8
	horizon  = 10.0
	tcpA     = 0
	tcpB     = 1
	udp      = 2
)

func run(algo hpfq.Algorithm) map[int]float64 {
	sched, err := hpfq.New(algo, linkRate)
	if err != nil {
		panic(err)
	}
	sched.AddSession(tcpA, 4e6)
	sched.AddSession(tcpB, 4e6)
	sched.AddSession(udp, 2e6)

	sim := hpfq.NewSim()
	link := hpfq.NewLink(sim, linkRate, sched)
	served := make(map[int]float64)
	link.OnDepart(func(p *hpfq.Packet) { served[p.Session] += p.Length })

	// TCP needs loss feedback: finite per-session buffers.
	link.SetSessionLimit(tcpA, 20)
	link.SetSessionLimit(tcpB, 20)
	link.SetSessionLimit(udp, 20)

	hpfq.NewTCPSource(sim, link, tcpA, segBits, 0.020, 0.01).Run()
	hpfq.NewTCPSource(sim, link, tcpB, segBits, 0.020, 0.05).Run()
	(&hpfq.CBR{Session: udp, Rate: 8e6, PktBits: segBits, Stop: horizon}).
		Run(sim, hpfq.ToLink(link))

	sim.Run(horizon)
	for s := range served {
		served[s] /= horizon
	}
	return served
}

func main() {
	fmt.Println("two TCP Reno flows vs an 8 Mbps UDP blast on a 10 Mbps link:")
	fmt.Println()
	fmt.Printf("%-8s %10s %10s %10s\n", "sched", "TCP-A", "TCP-B", "UDP")
	for _, algo := range []hpfq.Algorithm{hpfq.FIFO, hpfq.WF2QPlus} {
		got := run(algo)
		fmt.Printf("%-8s %8.2f M %8.2f M %8.2f M\n",
			algo, got[tcpA]/1e6, got[tcpB]/1e6, got[udp]/1e6)
	}
	fmt.Println()
	fmt.Println("FIFO lets the unresponsive UDP source crowd out TCP;")
	fmt.Println("WF2Q+ enforces the 4/4/2 Mbps guarantees.")
}
