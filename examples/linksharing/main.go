// Linksharing reproduces the paper's Fig. 1 example (experiment E12): 11
// agencies share a 45 Mbps link; Agency A1 is guaranteed 50%, and within A1
// the best-effort subclass must get at least 20% of the link (40% of A1).
//
// The program runs three phases and prints who gets what:
//
//  1. everyone busy — bandwidth follows the shares exactly;
//  2. A1's real-time class idle — its bandwidth goes to A1's best-effort
//     class first (hierarchical link sharing), not to the other agencies;
//  3. all of A1 idle — A1's 50% is split among the other ten agencies.
package main

import (
	"fmt"

	"hpfq"
)

const (
	linkRate = 45e6
	pktBits  = hpfq.Bits8KB
	phaseLen = 5.0

	sessRT = 0 // A1 real-time subclass
	sessBE = 1 // A1 best-effort subclass
	// agencies A2..A11 are sessions 2..11
)

func topology() *hpfq.Topology {
	a1 := hpfq.Interior("A1", 0.50,
		hpfq.Leaf("A1-RT", 0.60, sessRT),
		hpfq.Leaf("A1-BE", 0.40, sessBE),
	)
	kids := []*hpfq.Topology{a1}
	for i := 0; i < 10; i++ {
		kids = append(kids, hpfq.Leaf(fmt.Sprintf("A%d", i+2), 0.05, 2+i))
	}
	return hpfq.Interior("link", 1, kids...)
}

func main() {
	tree, err := hpfq.NewHierarchy(topology(), linkRate, hpfq.WF2QPlus)
	if err != nil {
		panic(err)
	}
	sim := hpfq.NewSim()
	link := hpfq.NewLink(sim, linkRate, tree)

	served := make(map[int]float64)
	link.OnDepart(func(p *hpfq.Packet) { served[p.Session] += p.Length })
	emit := hpfq.ToLink(link)

	// Small per-session buffers: a session that stops sending should stop
	// transmitting almost immediately rather than draining a phase-long
	// backlog into the next phase.
	for s := 0; s < 12; s++ {
		link.SetSessionLimit(s, 4)
	}

	// All sessions offer far more than their shares, phase by phase:
	// phase 1 [0,5): everyone; phase 2 [5,10): A1-RT silent;
	// phase 3 [10,15): all of A1 silent.
	for s := 0; s < 12; s++ {
		src := &hpfq.Scheduled{Session: s, Rate: 30e6, PktBits: pktBits}
		switch s {
		case sessRT:
			src.Intervals = []hpfq.Interval{{On: 0, Off: phaseLen}}
		case sessBE:
			src.Intervals = []hpfq.Interval{{On: 0, Off: 2 * phaseLen}}
		default:
			src.Intervals = []hpfq.Interval{{On: 0, Off: 3 * phaseLen}}
		}
		src.Run(sim, emit)
	}

	prev := make(map[int]float64)
	report := func(phase string) {
		fmt.Printf("%s\n", phase)
		name := func(s int) string {
			switch s {
			case sessRT:
				return "A1-RT"
			case sessBE:
				return "A1-BE"
			default:
				return fmt.Sprintf("A%d   ", s)
			}
		}
		for s := 0; s < 4; s++ {
			rate := (served[s] - prev[s]) / phaseLen / 1e6
			fmt.Printf("  %s  %6.2f Mbps\n", name(s), rate)
		}
		a2to11 := 0.0
		for s := 2; s < 12; s++ {
			a2to11 += served[s] - prev[s]
		}
		fmt.Printf("  A2..A11 combined: %.2f Mbps\n\n", a2to11/phaseLen/1e6)
		for s := 0; s < 12; s++ {
			prev[s] = served[s]
		}
	}

	sim.Run(phaseLen)
	report("phase 1 — everyone busy (expect A1-RT 13.5, A1-BE 9, A2..A11 22.5):")
	sim.Run(2 * phaseLen)
	report("phase 2 — A1-RT idle (A1-BE inherits all of A1's 22.5):")
	sim.Run(3 * phaseLen)
	report("phase 3 — A1 idle (A2..A11 share the whole 45):")
}
