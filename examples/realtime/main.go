// Realtime contrasts the delay a real-time session experiences under
// H-WFQ and H-WF²Q+ — a miniature of the paper's §5.1 experiments (Fig. 4).
//
// A real-time on/off session shares a deep hierarchy with greedy
// best-effort traffic and bursty cross traffic. H-WF²Q+ keeps the session's
// worst delay near the Corollary 2 bound; H-WFQ lets bursty siblings run
// ahead of their fluid service and then starves the subtree carrying the
// real-time session.
package main

import (
	"fmt"

	"hpfq"
)

const (
	linkRate = 45e6
	pktBits  = hpfq.Bits8KB
	horizon  = 10.0
	sessRT   = 0
	sessBE   = 1
)

func topology() *hpfq.Topology {
	n1 := hpfq.Interior("N-1", 0.30,
		hpfq.Leaf("RT", 0.81, sessRT),
		hpfq.Leaf("BE", 0.19, sessBE),
	)
	kids := []*hpfq.Topology{n1}
	for i := 0; i < 10; i++ {
		kids = append(kids, hpfq.Leaf(fmt.Sprintf("PS-%d", i+1), 0.035, 2+i))
	}
	for i := 0; i < 10; i++ {
		kids = append(kids, hpfq.Leaf(fmt.Sprintf("CS-%d", i+1), 0.035, 12+i))
	}
	return hpfq.Interior("root", 1, kids...)
}

func run(algo hpfq.Algorithm) (max, mean float64, n int) {
	tree, err := hpfq.NewHierarchy(topology(), linkRate, algo)
	if err != nil {
		panic(err)
	}
	sim := hpfq.NewSim()
	link := hpfq.NewLink(sim, linkRate, tree)

	var sum float64
	link.OnDepart(func(p *hpfq.Packet) {
		if p.Session != sessRT {
			return
		}
		d := p.Depart - p.Arrival
		sum += d
		if d > max {
			max = d
		}
		n++
	})
	emit := hpfq.ToLink(link)

	// Real-time session: 25 ms on / 75 ms off at its guaranteed 9 Mbps.
	rt := &hpfq.OnOff{Session: sessRT, Rate: 9e6, PktBits: pktBits,
		On: 0.025, Off: 0.075, Start: 0.2, Stop: horizon}
	rt.Run(sim, emit)
	// Greedy best-effort sibling keeps the subtree backlogged.
	(&hpfq.Greedy{Session: sessBE, PktBits: pktBits, Depth: 2}).Run(sim, link)
	// Constant-rate sessions, synchronized phases.
	for i := 0; i < 10; i++ {
		(&hpfq.CBR{Session: 2 + i, Rate: 0.035 * linkRate, PktBits: pktBits,
			Stop: horizon}).Run(sim, emit)
	}
	// Bursty cross traffic: 40-packet trains rotating across sessions.
	for i := 0; i < 10; i++ {
		(&hpfq.Train{Session: 12 + i, PktBits: pktBits, Count: 40,
			Period: 1.93, Gap: pktBits / linkRate,
			Start: 0.193 * float64(i), Stop: horizon}).Run(sim, emit)
	}

	sim.Run(horizon)
	return max, sum / float64(n), n
}

func main() {
	fmt.Println("real-time session delay over a shared hierarchy (10 s):")
	fmt.Println()
	fmt.Println("scheduler    packets   max delay   mean delay")
	for _, algo := range []hpfq.Algorithm{hpfq.WFQ, hpfq.WF2QPlus} {
		max, mean, n := run(algo)
		fmt.Printf("H-%-9s   %5d    %6.2f ms    %6.2f ms\n",
			algo, n, max*1e3, mean*1e3)
	}
	fmt.Println()
	fmt.Println("H-WF2Q+ holds the real-time session near its delay bound;")
	fmt.Println("H-WFQ lets bursty siblings run ahead and then starves it.")
}
