// Shaping demonstrates the wall-clock WF²Q+ shaper: pacing real work (here,
// timed message releases) across three classes on a shared budget. Unlike
// the other examples this one runs in real time, so it uses a small budget
// and finishes in about a second.
//
// Class "bulk" floods 200 messages up front; "interactive" sends one
// message every 50 ms. Despite the flood, every interactive message is
// released within its own slot time — the WF²Q+ isolation guarantee
// working on the wall clock.
package main

import (
	"fmt"
	"sync"
	"time"

	"hpfq"
)

const (
	budget      = 200_000 // cost units per second
	bulkClass   = 0
	interClass  = 1
	msgCost     = 1000 // per message ⇒ 5 ms per slot at full budget
	interPeriod = 50 * time.Millisecond
	interCount  = 15
)

func main() {
	s := hpfq.NewShaper(budget)
	s.AddClass(bulkClass, 150_000, 0) // 75% guaranteed
	s.AddClass(interClass, 50_000, 0) // 25% guaranteed

	var mu sync.Mutex
	var bulkDone int
	worst := time.Duration(0)

	// Bulk: 200 messages, all at once.
	for i := 0; i < 200; i++ {
		err := s.Submit(bulkClass, msgCost, func() {
			mu.Lock()
			bulkDone++
			mu.Unlock()
		})
		if err != nil {
			panic(err)
		}
	}

	// Interactive: one message every 50 ms; measure release latency.
	var wg sync.WaitGroup
	for i := 0; i < interCount; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(time.Duration(i) * interPeriod)
			start := time.Now()
			done := make(chan struct{})
			if err := s.Submit(interClass, msgCost, func() { close(done) }); err != nil {
				panic(err)
			}
			<-done
			lat := time.Since(start)
			mu.Lock()
			if lat > worst {
				worst = lat
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()

	mu.Lock()
	fmt.Printf("bulk released %d/200 while interactive traffic ran\n", bulkDone)
	fmt.Printf("worst interactive release latency: %v\n", worst.Round(time.Millisecond))
	mu.Unlock()
	fmt.Println()
	fmt.Println("The bulk flood of 200 messages is paced at its share; each")
	fmt.Println("interactive message is released within ~its own 20 ms slot")
	fmt.Println("plus one in-service message — not after the whole flood.")
}
