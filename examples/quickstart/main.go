// Quickstart: a standalone WF²Q+ server isolating three sessions on a
// 10 Mbps link. Session 2 misbehaves — it sends at 4× its guaranteed rate —
// yet sessions 0 and 1 receive their guarantees untouched, and session 2 is
// throttled to its share plus whatever is left over.
//
// Built with WithMetrics, the scheduler keeps its own per-session counters,
// delays, and measured WFI; the snapshot table at the end replaces hand-kept
// accounting.
package main

import (
	"fmt"
	"log"
	"os"

	"hpfq"
)

func main() {
	const (
		linkRate = 10e6 // 10 Mbps
		pktBits  = 12000
		horizon  = 5.0 // simulated seconds
	)

	sim := hpfq.NewSim()
	sched, err := hpfq.New(hpfq.WF2QPlus, linkRate, hpfq.WithMetrics())
	if err != nil {
		log.Fatal(err)
	}
	sched.AddSession(0, 5e6) // polite: sends at its 5 Mbps guarantee
	sched.AddSession(1, 3e6) // polite: sends at its 3 Mbps guarantee
	sched.AddSession(2, 2e6) // greedy: sends at 8 Mbps, guaranteed only 2

	link := hpfq.NewLink(sim, linkRate, sched)
	served := make([]float64, 3)
	link.OnDepart(func(p *hpfq.Packet) { served[p.Session] += p.Length })

	emit := hpfq.ToLink(link)
	for s, rate := range []float64{5e6, 3e6, 8e6} {
		src := &hpfq.CBR{Session: s, Rate: rate, PktBits: pktBits, Stop: horizon}
		src.Run(sim, emit)
	}

	sim.Run(horizon)

	fmt.Println("session  guaranteed  offered   received (Mbps)")
	offered := []float64{5, 3, 8}
	guaranteed := []float64{5, 3, 2}
	for s := 0; s < 3; s++ {
		fmt.Printf("   %d        %.1f       %.1f       %.2f\n",
			s, guaranteed[s], offered[s], served[s]/horizon/1e6)
	}
	fmt.Println()
	fmt.Println("Sessions 0 and 1 get their guarantees; the misbehaving")
	fmt.Println("session 2 is limited to its share plus the leftover capacity.")

	fmt.Println()
	fmt.Println("Scheduler snapshot (queueing delay to start of service, measured WFI):")
	m := sched.Snapshot()
	if err := m.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
